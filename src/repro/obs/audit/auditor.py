"""The online invariant auditor: runtime verification on the obs event bus.

Subscribed to an :class:`~repro.obs.bus.EventBus`, the auditor consumes the
structured events the runtimes already publish (lock grants/releases/
inheritances, action begin/end, commit routing, 2PC votes and decisions)
and incrementally checks the paper's per-colour claims (§5.1):

- **serializability** — a per-colour serialization graph over effective
  accesses; a cycle among committed serialization units is a violation;
- **lock discipline** — two-phase behaviour per owner, plus the §5.2
  modified locking rules re-checked at every grant (exclusive grants must
  only coexist with inclusive-ancestor holders; WRITE records on one
  object must share a colour);
- **commit routing** — §5.3: each colour goes to the closest same-coloured
  live ancestor, or becomes permanent only when the action is outermost
  for that colour;
- **termination** — a per-txn 2PC state machine: no commit decision after
  a rollback vote, no shadow promotion without a decision in evidence,
  presumed abort never contradicting a logged commit, no in-doubt
  commit-voter once the coordinator has logged its end, fast-path
  (piggybacked / one-phase) decisions only with every other participant's
  affirmative vote in evidence, no read-only voter driven through phase
  two, and commute-path (local, no-prepare) decisions only over
  commuting-flagged grants with no exclusive data record in the colour;
- **failure atomicity** — an aborted colour leaves no stable effects; a
  colour can only be made permanent by an action that possesses it.

Violations become :class:`~repro.obs.audit.findings.Finding`s (also
counted in the metrics registry as ``audit_findings_total{kind=...}``);
the per-node lock state is reset on ``node.restart`` because a crash
legitimately wipes a server's volatile lock tables.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.obs.audit import findings as F
from repro.obs.audit.findings import Finding
from repro.obs.audit.graph import SerializationGraph, conflicts
from repro.obs.bus import ObsEvent

#: modes that participate in the data-conflict graph and the §5.2 rule
#: checks; semantic operation-group modes are strings outside this set and
#: are subject to the two-phase check plus the commutativity-based grant
#: check (``_check_semantic_grant``) when the grant event carries the
#: type's compatibility relation.
DATA_MODES = frozenset(("read", "exclusive_read", "write"))
EXCLUSIVE_MODES = frozenset(("exclusive_read", "write"))

#: sentinel for "not enough information to judge" (unknown action uid)
_UNKNOWN = object()


@dataclass
class _ActionInfo:
    uid: str
    parent: str = ""
    colours: Set[str] = field(default_factory=set)
    name: str = ""
    begin_seq: int = 0
    outcome: Optional[str] = None
    end_seq: Optional[int] = None


@dataclass
class _TxnState:
    txn: str
    colour: str = ""
    action: str = ""
    coordinator: str = ""
    participants: Set[str] = field(default_factory=set)
    votes: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)
    decisions: Dict[str, int] = field(default_factory=dict)
    queried: Dict[str, int] = field(default_factory=dict)
    applies: Dict[str, int] = field(default_factory=dict)
    aborts: Dict[str, int] = field(default_factory=dict)
    end_seq: Optional[int] = None


class InvariantAuditor:
    """Incremental checker over the obs event stream (thread-safe)."""

    def __init__(self, metrics=None, max_events: int = 200_000,
                 max_accesses: int = 4096):
        self.metrics = metrics
        self._mutex = threading.Lock()
        self._seq = 0
        self.events: Deque[Tuple[int, ObsEvent]] = deque(maxlen=max_events)
        self.findings: List[Finding] = []
        self._actions: Dict[str, _ActionInfo] = {}
        #: (node, object) -> owner -> colour -> mode (mirror of lock tables)
        self._held: Dict[Tuple[str, str], Dict[str, Dict[str, str]]] = {}
        #: (node, owner) -> seq of first release/inheritance (shrink phase)
        self._closed: Dict[Tuple[str, str], int] = {}
        #: (node, owner, colour, group) flagged ``commuting`` at grant time
        #: — the evidence a commute-path local decision must rest on
        self._commuting: Set[Tuple[str, str, str, str]] = set()
        #: (object, colour) -> [(seq, owner, mode)] grant history
        self._accesses: Dict[Tuple[str, str], List[Tuple[int, str, str]]] = {}
        self._max_accesses = max_accesses
        self._txns: Dict[str, _TxnState] = {}
        #: dedup keys of findings already counted in metrics (report-time
        #: findings recompute on every call and must not double-count)
        self._counted: Set[Tuple] = set()
        #: callbacks fired on every new online finding (e.g. the flight
        #: recorder freezing its ring); exceptions are swallowed so a
        #: listener can never break the audit itself.
        self._finding_listeners: List[Any] = []

    # -- intake ---------------------------------------------------------------

    def consume(self, event: ObsEvent) -> None:
        with self._mutex:
            self._seq += 1
            seq = self._seq
            self.events.append((seq, event))
            handler = self._HANDLERS.get(event.kind)
            if handler is not None:
                handler(self, seq, event)

    def event_dicts(self, since: int = 0) -> List[Dict[str, Any]]:
        """The retained event log, JSON-ready (for dumps and CLI replay).

        ``since`` skips events with ``seq <= since`` — segment rotation
        passes the last sequence number it already wrote so consecutive
        segments partition the stream without overlap.
        """
        with self._mutex:
            return [
                {"seq": seq, "tick": event.tick, "kind": event.kind,
                 "labels": dict(event.labels)}
                for seq, event in self.events
                if seq > since
            ]

    def drop_events(self, upto: int) -> int:
        """Forget retained events with ``seq <= upto``; returns how many.

        The online checks keep their own state — dropping already-exported
        events only shrinks the replay log.  Segment rotation calls this
        after writing a segment so retention tracks one segment, not the
        whole soak horizon.
        """
        with self._mutex:
            dropped = 0
            while self.events and self.events[0][0] <= upto:
                self.events.popleft()
                dropped += 1
            return dropped

    # -- findings -------------------------------------------------------------

    def _finding(self, kind: str, message: str, *, tick: float = 0.0,
                 colour: str = "", node: str = "", txn: str = "",
                 action: str = "", object: str = "",
                 event_seqs: Tuple[int, ...] = ()) -> None:
        found = Finding(kind=kind, message=message, tick=tick, colour=colour,
                        node=node, txn=txn, action=action, object=object,
                        event_seqs=event_seqs)
        self.findings.append(found)
        self._count(kind, (kind, message, event_seqs))
        for listener in self._finding_listeners:
            try:
                listener(found)
            except Exception:
                pass

    def add_finding_listener(self, listener) -> None:
        """Call ``listener(finding)`` whenever an online check fires."""
        self._finding_listeners.append(listener)

    def _count(self, kind: str, key: Tuple) -> None:
        if key in self._counted:
            return
        self._counted.add(key)
        if self.metrics is not None:
            self.metrics.counter("audit_findings_total", kind=kind).inc()

    def report(self) -> List[Finding]:
        """All findings so far, plus the (recomputed) graph-level checks."""
        with self._mutex:
            return list(self.findings) + self._check_serialization()

    # -- actions --------------------------------------------------------------

    def _on_action_begin(self, seq: int, event: ObsEvent) -> None:
        uid = str(event.label("action", ""))
        if not uid:
            return
        colours = str(event.label("colours", ""))
        self._actions[uid] = _ActionInfo(
            uid=uid,
            parent=str(event.label("parent", "") or ""),
            colours={c for c in colours.split(",") if c},
            name=str(event.label("name", "")),
            begin_seq=seq,
        )

    def _on_action_end(self, seq: int, event: ObsEvent) -> None:
        uid = str(event.label("action", ""))
        info = self._actions.get(uid)
        if info is None:
            return
        info.outcome = str(event.label("outcome", ""))
        info.end_seq = seq

    def _is_ancestor(self, maybe_ancestor: str, owner: str):
        """True/False via the begin-event parent chain; None when unknown."""
        if maybe_ancestor == owner:
            return True
        info = self._actions.get(owner)
        if info is None:
            return None
        seen = set()
        while info.parent:
            if info.parent == maybe_ancestor:
                return True
            if info.parent in seen:      # defensive: corrupt parent chain
                return None
            seen.add(info.parent)
            info = self._actions.get(info.parent)
            if info is None:
                return None
        return False

    # -- lock discipline ------------------------------------------------------

    def _on_lock_granted(self, seq: int, event: ObsEvent) -> None:
        node = str(event.label("node", ""))
        owner = str(event.label("owner", ""))
        obj = str(event.label("object", ""))
        mode = str(event.label("mode", ""))
        colour = str(event.label("colour", ""))
        if not owner or not obj:
            return
        if (node, owner) in self._closed:
            self._finding(
                F.TWO_PHASE,
                f"lock on {obj} granted to {owner} after it began releasing",
                tick=event.tick, colour=colour, node=node, action=owner,
                object=obj,
                event_seqs=(self._closed[(node, owner)], seq),
            )
        held = self._held.setdefault((node, obj), {})
        if mode in DATA_MODES:
            self._check_grant_rules(seq, event, node, owner, obj, mode,
                                    colour, held)
            history = self._accesses.setdefault((obj, colour), [])
            if len(history) < self._max_accesses:
                history.append((seq, owner, mode))
        elif event.label("semantic") is not None:
            self._check_semantic_grant(seq, event, node, owner, obj, mode,
                                       colour, held)
            if event.label("commuting") is not None:
                self._commuting.add((node, owner, colour, mode))
        own = held.setdefault(owner, {})
        if mode in DATA_MODES and own.get(colour) in DATA_MODES:
            own[colour] = max((own[colour], mode),
                              key=("read", "exclusive_read", "write").index)
        else:
            own[colour] = mode

    def _check_grant_rules(self, seq: int, event: ObsEvent, node: str,
                           owner: str, obj: str, mode: str, colour: str,
                           held: Dict[str, Dict[str, str]]) -> None:
        """Re-check the §5.2 modified locking rules against our lock view."""
        for other, records in held.items():
            if other == owner:
                continue
            other_excl = any(m in EXCLUSIVE_MODES for m in records.values())
            if mode in EXCLUSIVE_MODES or other_excl:
                # exclusive on either side: the holder must be an inclusive
                # ancestor of the requester (unknown ancestry -> no verdict)
                if self._is_ancestor(other, owner) is False:
                    self._finding(
                        F.LOCK_RULE,
                        f"{mode} lock on {obj} granted to {owner} while "
                        f"non-ancestor {other} holds it",
                        tick=event.tick, colour=colour, node=node,
                        action=owner, object=obj, event_seqs=(seq,),
                    )
        if mode == "write":
            for other, records in held.items():
                for held_colour, held_mode in records.items():
                    if held_mode == "write" and held_colour != colour:
                        self._finding(
                            F.LOCK_RULE,
                            f"write lock on {obj} granted in colour "
                            f"{colour} while a {held_colour}-coloured "
                            f"write record exists (holder {other})",
                            tick=event.tick, colour=colour, node=node,
                            action=owner, object=obj, event_seqs=(seq,),
                        )

    def _check_semantic_grant(self, seq: int, event: ObsEvent, node: str,
                              owner: str, obj: str, group: str, colour: str,
                              held: Dict[str, Dict[str, str]]) -> None:
        """Re-check a type-specific (operation-group) grant.

        The grant event carries the set of groups its own group commutes
        with (``compatible``, emitted by the lock registry from the type's
        SemanticSpec); compatibility is symmetric, so every other holder's
        group must appear in that set unless the holder is an inclusive
        ancestor of the requester.  Retained records (``__retain__``)
        commute with nothing, so a non-ancestor retainer always conflicts.
        """
        compatible = {
            g for g in str(event.label("compatible", "")).split(",") if g
        }
        for other, records in held.items():
            if other == owner:
                continue
            incompatible = sorted(
                g for g in records.values()
                if g not in DATA_MODES and g not in compatible
            )
            if not incompatible:
                continue
            if self._is_ancestor(other, owner) is False:
                self._finding(
                    F.SEMANTIC_LOCK_RULE,
                    f"group {group} on {obj} granted to {owner} while "
                    f"non-ancestor {other} holds incompatible group "
                    f"{incompatible[0]}",
                    tick=event.tick, colour=colour, node=node,
                    action=owner, object=obj, event_seqs=(seq,),
                )

    def _on_lock_released(self, seq: int, event: ObsEvent) -> None:
        node = str(event.label("node", ""))
        owner = str(event.label("owner", ""))
        obj = str(event.label("object", ""))
        colour = str(event.label("colour", ""))
        self._closed.setdefault((node, owner), seq)
        held = self._held.get((node, obj))
        if held is not None:
            records = held.get(owner)
            if records is not None:
                records.pop(colour, None)
                if not records:
                    held.pop(owner, None)
            if not held:
                self._held.pop((node, obj), None)

    def _on_lock_inherited(self, seq: int, event: ObsEvent) -> None:
        node = str(event.label("node", ""))
        owner = str(event.label("owner", ""))
        dest = str(event.label("to", ""))
        obj = str(event.label("object", ""))
        mode = str(event.label("mode", ""))
        colour = str(event.label("colour", ""))
        self._closed.setdefault((node, owner), seq)
        if (node, dest) in self._closed:
            self._finding(
                F.TWO_PHASE,
                f"lock on {obj} inherited by {dest}, which had already "
                f"begun releasing",
                tick=event.tick, colour=colour, node=node, action=dest,
                object=obj, event_seqs=(self._closed[(node, dest)], seq),
            )
        held = self._held.get((node, obj))
        if held is None:
            return
        records = held.get(owner)
        if records is not None:
            records.pop(colour, None)
            if not records:
                held.pop(owner, None)
        dest_records = held.setdefault(dest, {})
        existing = dest_records.get(colour)
        if existing in DATA_MODES and mode in DATA_MODES:
            order = ("read", "exclusive_read", "write").index
            dest_records[colour] = max((existing, mode), key=order)
        else:
            dest_records[colour] = mode

    def _on_node_restart(self, seq: int, event: ObsEvent) -> None:
        node = str(event.label("node", ""))
        for key in [k for k in self._held if k[0] == node]:
            del self._held[key]
        for key in [k for k in self._closed if k[0] == node]:
            del self._closed[key]
        self._commuting = {k for k in self._commuting if k[0] != node}

    # -- commit routing / permanence ------------------------------------------

    def _expected_route(self, action_uid: str, colour: str):
        """Closest not-yet-terminated ancestor possessing the colour.

        Returns its uid, "" for "permanent" (outermost for the colour), or
        the _UNKNOWN sentinel when the parent chain is not fully known.
        Terminated ancestors are skipped: a committed ancestor's
        responsibilities have moved further up, an aborted one is gone —
        this matches the runtime's live-ancestor reparenting.
        """
        info = self._actions.get(action_uid)
        if info is None:
            return _UNKNOWN
        seen = set()
        while info.parent:
            if info.parent in seen:
                return _UNKNOWN
            seen.add(info.parent)
            parent = self._actions.get(info.parent)
            if parent is None:
                return _UNKNOWN
            if colour in parent.colours and parent.end_seq is None:
                return parent.uid
            info = parent
        return ""

    def _on_commit_route(self, seq: int, event: ObsEvent) -> None:
        action = str(event.label("action", ""))
        colour = str(event.label("colour", ""))
        dest = str(event.label("dest", ""))
        expected = self._expected_route(action, colour)
        if expected is _UNKNOWN or dest == expected:
            return
        if expected == "":
            message = (f"colour {colour} of {action} routed to {dest} "
                       f"although the action is outermost for it")
        elif dest == "":
            message = (f"colour {colour} of {action} made permanent "
                       f"although live ancestor {expected} possesses it")
        else:
            message = (f"colour {colour} of {action} routed to {dest}; "
                       f"closest live same-coloured ancestor is {expected}")
        self._finding(F.COMMIT_ROUTE, message, tick=event.tick,
                      colour=colour, node=str(event.label("node", "")),
                      action=action, event_seqs=(seq,))

    def _on_colour_permanent(self, seq: int, event: ObsEvent) -> None:
        action = str(event.label("action", ""))
        colour = str(event.label("colour", ""))
        node = str(event.label("node", ""))
        info = self._actions.get(action)
        if info is None:
            return
        if colour and colour not in info.colours:
            self._finding(
                F.ATOMICITY,
                f"{action} persisted colour {colour} it does not possess",
                tick=event.tick, colour=colour, node=node, action=action,
                event_seqs=(seq,),
            )
        elif info.outcome == "aborted":
            self._finding(
                F.ATOMICITY,
                f"aborted action {action} persisted colour {colour}",
                tick=event.tick, colour=colour, node=node, action=action,
                event_seqs=(info.end_seq or seq, seq),
            )

    # -- 2PC state machine -----------------------------------------------------

    def _txn(self, event: ObsEvent) -> Optional[_TxnState]:
        txn = str(event.label("txn", ""))
        if not txn:
            return None
        state = self._txns.get(txn)
        if state is None:
            state = self._txns[txn] = _TxnState(txn=txn)
        return state

    def _on_twopc_begin(self, seq: int, event: ObsEvent) -> None:
        state = self._txn(event)
        if state is None:
            return
        state.colour = str(event.label("colour", ""))
        state.action = str(event.label("action", ""))
        state.coordinator = str(event.label("node", ""))
        participants = str(event.label("participants", ""))
        state.participants = {p for p in participants.split(",") if p}

    def _on_twopc_vote(self, seq: int, event: ObsEvent) -> None:
        state = self._txn(event)
        if state is None:
            return
        node = str(event.label("node", ""))
        vote = str(event.label("vote", ""))
        state.votes.setdefault(node, []).append((vote, seq))

    def _on_twopc_decision(self, seq: int, event: ObsEvent) -> None:
        state = self._txn(event)
        if state is None:
            return
        decision = str(event.label("decision", ""))
        tick = event.tick
        opposite = "abort" if decision == "commit" else "commit"
        if opposite in state.decisions:
            self._finding(
                F.DECISION_CONFLICT,
                f"{state.txn} decided {decision} after deciding {opposite}",
                tick=tick, txn=state.txn, colour=state.colour,
                event_seqs=(state.decisions[opposite], seq),
            )
        if decision == "commit":
            # read-only and commute are affirmative: the voter consented
            # and left the protocol, it does not gate the decision
            negative = [
                (node, vote, vseq)
                for node, votes in state.votes.items()
                for vote, vseq in votes
                if vote not in ("commit", "read-only", "commute")
            ]
            if negative:
                node, vote, vseq = negative[0]
                self._finding(
                    F.COMMIT_AFTER_ROLLBACK,
                    f"{state.txn} decided commit although {node} voted "
                    f"{vote}",
                    tick=tick, txn=state.txn, node=node,
                    colour=state.colour, event_seqs=(vseq, seq),
                )
        fast_path = str(event.label("fast_path", ""))
        if decision == "commit" and fast_path == "commute":
            # commute decisions are taken locally and concurrently at every
            # participant — there is no vote quorum to check; their
            # soundness rests on the commutativity of the colour instead
            self._check_commute_decision(seq, event, state)
        elif decision == "commit" and fast_path and state.participants:
            # a fast-path decision is taken *at a participant*: it is only
            # sound if the coordinator delegated it after collecting every
            # other participant's affirmative vote
            decider = str(event.label("node", ""))
            missing = sorted(
                p for p in state.participants - {decider}
                if not any(vote in ("commit", "read-only", "commute")
                           for vote, _ in state.votes.get(p, []))
            )
            if missing:
                self._finding(
                    F.FAST_PATH_NO_QUORUM,
                    f"{state.txn} decided commit via fast path "
                    f"{fast_path} at {decider} without an affirmative "
                    f"vote from {missing[0]}",
                    tick=tick, txn=state.txn, node=decider,
                    colour=state.colour, event_seqs=(seq,),
                )
        state.decisions.setdefault(decision, seq)

    def _check_commute_decision(self, seq: int, event: ObsEvent,
                                state: _TxnState) -> None:
        """A local (no-prepare) commute decision is only sound when the
        colour is fully commuting at the decider: every operation group it
        applied was granted with the registry's ``commuting`` flag, and
        the action holds no exclusive data-mode record in the deciding
        colour there (a plain WRITE means classic 2PC was required)."""
        node = str(event.label("node", ""))
        owner = str(event.label("action", ""))
        colour = str(event.label("colour", ""))
        if not node or not owner:
            return
        for group in str(event.label("groups", "")).split(","):
            if group and (node, owner, colour, group) not in self._commuting:
                self._finding(
                    F.COMMUTE_UNSOUND,
                    f"{state.txn} decided commit locally (commute path) at "
                    f"{node} applying group {group}, which was never "
                    f"granted to {owner} with the commuting flag",
                    tick=event.tick, txn=state.txn, node=node,
                    colour=colour, action=owner, event_seqs=(seq,),
                )
        for (held_node, obj), holders in sorted(self._held.items()):
            if held_node != node:
                continue
            mode = holders.get(owner, {}).get(colour)
            if mode in EXCLUSIVE_MODES:
                self._finding(
                    F.COMMUTE_UNSOUND,
                    f"{state.txn} decided commit locally (commute path) at "
                    f"{node} although {owner} holds exclusive {mode} on "
                    f"{obj} in the deciding colour",
                    tick=event.tick, txn=state.txn, node=node,
                    colour=colour, action=owner, object=obj,
                    event_seqs=(seq,),
                )

    def _on_twopc_commit(self, seq: int, event: ObsEvent) -> None:
        state = self._txn(event)
        if state is None:
            return
        node = str(event.label("node", ""))
        evidence = "commit" in state.decisions or "commit" in state.queried
        if not evidence:
            self._finding(
                F.COMMIT_WITHOUT_DECISION,
                f"{node} promoted shadows for {state.txn} with no commit "
                f"decision in evidence",
                tick=event.tick, txn=state.txn, node=node,
                event_seqs=(seq,),
            )
        if "abort" in state.decisions:
            self._finding(
                F.ATOMICITY,
                f"{node} promoted shadows for {state.txn}, which decided "
                f"abort — aborted colour left stable effects",
                tick=event.tick, txn=state.txn, node=node,
                colour=state.colour,
                event_seqs=(state.decisions["abort"], seq),
            )
        read_only = [
            vseq for vote, vseq in state.votes.get(node, [])
            if vote == "read-only"
        ]
        if read_only:
            self._finding(
                F.READ_ONLY_IN_PHASE_TWO,
                f"{node} voted read-only for {state.txn} (releasing its "
                f"locks at vote time) yet went through phase two",
                tick=event.tick, txn=state.txn, node=node,
                colour=state.colour, event_seqs=(read_only[0], seq),
            )
        state.applies.setdefault(node, seq)

    def _on_twopc_abort(self, seq: int, event: ObsEvent) -> None:
        state = self._txn(event)
        if state is None:
            return
        state.aborts.setdefault(str(event.label("node", "")), seq)

    def _on_twopc_decision_query(self, seq: int, event: ObsEvent) -> None:
        state = self._txn(event)
        if state is None:
            return
        decision = str(event.label("decision", ""))
        if (decision == "abort" and "commit" in state.decisions
                and state.end_seq is None):
            self._finding(
                F.PRESUMED_ABORT,
                f"coordinator answered abort for {state.txn}, which it "
                f"decided to commit and has not finished",
                tick=event.tick, txn=state.txn,
                node=str(event.label("node", "")),
                event_seqs=(state.decisions["commit"], seq),
            )
        if decision == "commit" and "abort" in state.decisions:
            self._finding(
                F.DECISION_CONFLICT,
                f"coordinator answered commit for {state.txn}, which "
                f"decided abort",
                tick=event.tick, txn=state.txn,
                event_seqs=(state.decisions["abort"], seq),
            )
        state.queried.setdefault(decision, seq)

    def _on_twopc_end(self, seq: int, event: ObsEvent) -> None:
        state = self._txn(event)
        if state is None:
            return
        state.end_seq = seq
        for node, votes in sorted(state.votes.items()):
            voted_commit = any(vote == "commit" for vote, _ in votes)
            if not voted_commit:
                continue
            if node not in state.applies and node not in state.aborts:
                self._finding(
                    F.IN_DOUBT_AFTER_END,
                    f"coordinator ended {state.txn} but commit-voter "
                    f"{node} never saw the decision",
                    tick=event.tick, txn=state.txn, node=node,
                    event_seqs=(seq,),
                )

    # -- serialization graph (report-time) -------------------------------------

    def _chain_committed(self, owner: str, colour: str) -> bool:
        """Did the whole inheritance chain of this access decide commit?

        Walks owner -> closest same-coloured static ancestor -> ... -> the
        serialization unit; an aborted link anywhere means the access left
        no effects in this colour (failure atomicity) and must not
        contribute conflict edges.  Open or unknown links count as
        committed — a pessimistic choice that keeps live cycles visible.
        """
        current = owner
        seen = set()
        while True:
            if current in seen:
                return True
            seen.add(current)
            info = self._actions.get(current)
            if info is None:
                return True
            if info.outcome == "aborted":
                return False
            nxt = ""
            walk = info
            while walk.parent:
                parent = self._actions.get(walk.parent)
                if parent is None:
                    return True
                if colour in parent.colours:
                    nxt = parent.uid
                    break
                walk = parent
            if not nxt:
                return True
            current = nxt

    def _unit_of(self, owner: str, colour: str) -> str:
        """The serialization unit: topmost static ancestor with the colour."""
        unit = owner
        info = self._actions.get(owner)
        seen = set()
        while info is not None and info.parent and info.parent not in seen:
            seen.add(info.parent)
            info = self._actions.get(info.parent)
            if info is None:
                break
            if colour in info.colours:
                unit = info.uid
        return unit

    def _check_serialization(self) -> List[Finding]:
        graphs: Dict[str, SerializationGraph] = {}
        for (obj, colour), history in sorted(self._accesses.items()):
            effective = [
                (seq, owner, mode) for seq, owner, mode in history
                if self._chain_committed(owner, colour)
            ]
            if len(effective) < 2:
                continue
            # pairwise edges are quadratic; bound the per-object window so
            # a pathological history cannot stall report()
            effective = effective[:512]
            graph = graphs.get(colour)
            if graph is None:
                graph = graphs[colour] = SerializationGraph(colour)
            units = {
                owner: self._unit_of(owner, colour)
                for _, owner, _ in effective
            }
            for i, (seq_a, owner_a, mode_a) in enumerate(effective):
                for seq_b, owner_b, mode_b in effective[i + 1:]:
                    if owner_a == owner_b:
                        continue
                    if not conflicts(mode_a, mode_b):
                        continue
                    graph.add_edge(units[owner_a], units[owner_b],
                                   (seq_a, seq_b))
        found: List[Finding] = []
        for colour, graph in sorted(graphs.items()):
            cycle = graph.find_cycle()
            if cycle is None:
                continue
            seqs = graph.cycle_witnesses(cycle)
            finding = Finding(
                kind=F.SERIALIZATION_CYCLE,
                message=(f"serialization units of colour {colour} form a "
                         f"cycle: {' -> '.join(cycle)}"),
                colour=colour, event_seqs=seqs,
            )
            found.append(finding)
            self._count(F.SERIALIZATION_CYCLE,
                        (F.SERIALIZATION_CYCLE, colour, tuple(cycle)))
        return found

    _HANDLERS = {
        "action.begin": _on_action_begin,
        "action.end": _on_action_end,
        "lock.granted": _on_lock_granted,
        "lock.released": _on_lock_released,
        "lock.inherited": _on_lock_inherited,
        "node.restart": _on_node_restart,
        "commit.route": _on_commit_route,
        "colour.permanent": _on_colour_permanent,
        "twopc.begin": _on_twopc_begin,
        "twopc.vote": _on_twopc_vote,
        "twopc.decision": _on_twopc_decision,
        "twopc.commit": _on_twopc_commit,
        "twopc.abort": _on_twopc_abort,
        "twopc.decision_query": _on_twopc_decision_query,
        "twopc.end": _on_twopc_end,
    }
