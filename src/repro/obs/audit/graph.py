"""Per-colour serialization graphs over observed lock grants.

Nodes are *serialization units*: the topmost action in the inheritance
chain that possesses the colour (§5.3 — a committed constituent's locks
travel to its closest same-coloured ancestor, so everything below the unit
serializes as one).  A directed edge u -> v records that some effective
access by u preceded a conflicting access by v on the same object; a cycle
means the colour's committed units cannot be ordered — per-colour
serializability (§5.1) is broken.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple


def conflicts(mode_a: str, mode_b: str) -> bool:
    """Two accesses conflict when at least one of them writes."""
    return "write" in (mode_a, mode_b)


class SerializationGraph:
    """Conflict graph for one colour; nodes are serialization-unit uids."""

    def __init__(self, colour: str):
        self.colour = colour
        self.edges: Dict[str, Set[str]] = {}
        #: first (earlier-seq, later-seq) event pair that witnessed an edge
        self.witness: Dict[Tuple[str, str], Tuple[int, int]] = {}

    def add_edge(self, src: str, dst: str, witness: Tuple[int, int]) -> None:
        if src == dst:
            return
        self.edges.setdefault(src, set()).add(dst)
        self.edges.setdefault(dst, set())
        self.witness.setdefault((src, dst), witness)

    def find_cycle(self) -> Optional[List[str]]:
        """A cycle as [u1, u2, ..., u1], or None.  Deterministic order."""
        WHITE, GREY, BLACK = 0, 1, 2
        state = {node: WHITE for node in self.edges}
        for root in sorted(self.edges):
            if state[root] != WHITE:
                continue
            state[root] = GREY
            path = [root]
            stack = [iter(sorted(self.edges.get(root, ())))]
            while stack:
                advanced = False
                for nxt in stack[-1]:
                    mark = state.get(nxt, WHITE)
                    if mark == GREY:
                        at = path.index(nxt)
                        return path[at:] + [nxt]
                    if mark == WHITE:
                        state[nxt] = GREY
                        path.append(nxt)
                        stack.append(iter(sorted(self.edges.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    state[path.pop()] = BLACK
                    stack.pop()
        return None

    def cycle_witnesses(self, cycle: List[str]) -> Tuple[int, ...]:
        """Event seqs backing each edge of a cycle, for the finding."""
        seqs: List[int] = []
        for src, dst in zip(cycle, cycle[1:]):
            seqs.extend(self.witness.get((src, dst), ()))
        return tuple(sorted(set(seqs)))
