"""Structured findings produced by the online invariant auditor.

Each finding names the invariant that broke (``kind``), the entities
involved (colour / node / txn / action / object, whichever apply) and the
bus-event sequence numbers that witnessed it, so a violation can be traced
back through the saved event log (``python -m repro.obs.audit dump.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

#: lock discipline: a grant or inheritance reached an owner that had
#: already started releasing (shrinking phase) — two-phase locking broken.
TWO_PHASE = "two-phase-violation"
#: §5.2 modified locking rules broken at grant time (non-ancestor holder
#: behind an exclusive grant, or a differently-coloured WRITE record).
LOCK_RULE = "locking-rule-violation"
#: §5.3 commit routing: a colour went somewhere other than the closest
#: same-coloured live ancestor (or was made permanent while one existed).
COMMIT_ROUTE = "commit-route-violation"
#: a coordinator decided commit although some participant voted rollback.
COMMIT_AFTER_ROLLBACK = "commit-after-rollback"
#: a participant applied (promoted shadows for) a txn with no commit
#: decision in evidence.
COMMIT_WITHOUT_DECISION = "commit-without-decision"
#: per-colour failure atomicity: stable effects from an aborted colour,
#: or permanence of a colour the action does not possess.
ATOMICITY = "atomicity-violation"
#: a coordinator answered "abort" (presumed abort) for a transaction it
#: had decided to commit and had not yet finished.
PRESUMED_ABORT = "presumed-abort-violated"
#: both commit and abort decisions observed for one transaction.
DECISION_CONFLICT = "decision-conflict"
#: type-specific (semantic) locking: an operation-group lock was granted
#: while a non-ancestor held an incompatible group on the same object.
SEMANTIC_LOCK_RULE = "semantic-lock-rule-violation"
#: per-colour serialization graph contains a cycle.
SERIALIZATION_CYCLE = "serialization-cycle"
#: coordinator logged its end-of-transaction although some participant
#: that voted commit never saw the decision.
IN_DOUBT_AFTER_END = "in-doubt-after-end"
#: a fast-path (piggybacked / one-phase) commit decision was taken while
#: some other participant's affirmative vote was not in evidence.
FAST_PATH_NO_QUORUM = "fast-path-decision-without-quorum"
#: a participant that voted read-only (and therefore left the protocol at
#: vote time) was nevertheless driven through phase two.
READ_ONLY_IN_PHASE_TWO = "read-only-participant-in-phase-two"
#: a commute-path (local, no-prepare) commit decision was taken although
#: the colour was not fully commuting at the decider: an applied operation
#: group lacked a commuting-flagged grant, or the action held an exclusive
#: data-mode record in the deciding colour.
COMMUTE_UNSOUND = "commute-decision-not-commuting"
#: live introspection: a server's reported state disagrees with the
#: coordinator-side view (stale epoch under a live action, or a prepared
#: transaction the coordinator decided long ago).  Produced by
#: ``repro.obs.introspect`` — deliberately NOT in :data:`ALL_KINDS` and
#: never appended to the auditor's findings: drift is an expected symptom
#: of injected faults (partitions, restarts), not a protocol violation,
#: and chaos suites that hard-fail on auditor findings must stay green
#: while the partition arm of an introspection run reports drift.
INTROSPECT_DRIFT = "introspection-drift"

ALL_KINDS = (
    TWO_PHASE,
    LOCK_RULE,
    COMMIT_ROUTE,
    COMMIT_AFTER_ROLLBACK,
    COMMIT_WITHOUT_DECISION,
    ATOMICITY,
    SEMANTIC_LOCK_RULE,
    PRESUMED_ABORT,
    DECISION_CONFLICT,
    SERIALIZATION_CYCLE,
    IN_DOUBT_AFTER_END,
    FAST_PATH_NO_QUORUM,
    READ_ONLY_IN_PHASE_TWO,
    COMMUTE_UNSOUND,
)


@dataclass(frozen=True)
class Finding:
    """One detected invariant violation."""

    kind: str
    message: str
    tick: float = 0.0
    colour: str = ""
    node: str = ""
    txn: str = ""
    action: str = ""
    object: str = ""
    event_seqs: Tuple[int, ...] = field(default_factory=tuple)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "message": self.message,
                               "tick": self.tick}
        for key in ("colour", "node", "txn", "action", "object"):
            value = getattr(self, key)
            if value:
                out[key] = value
        if self.event_seqs:
            out["event_seqs"] = list(self.event_seqs)
        return out

    def __str__(self) -> str:
        where = " ".join(
            f"{key}={getattr(self, key)}"
            for key in ("colour", "node", "txn", "action", "object")
            if getattr(self, key)
        )
        events = (" events=" + ",".join(str(s) for s in self.event_seqs)
                  if self.event_seqs else "")
        return f"[{self.kind}] {self.message}" + \
            (f" ({where})" if where else "") + events
