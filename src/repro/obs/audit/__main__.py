"""CLI: replay a saved observability dump through the invariant auditor.

Usage::

    python -m repro.obs.audit run.trace.json
    python -m repro.obs.audit run.trace.json --json
    python -m repro.obs.audit soak-out/          # soak segment directory

The input is a trace document written by ``Observability.save`` (its
``events`` key is the retained bus-event log) or a soak segment directory,
whose per-segment event slices are replayed concatenated in segment order
— rotation partitions the stream without overlap, so the replay sees
exactly what an unrotated run would have retained.  Exit codes: 0 = no
findings, 1 = unusable input, 2 = invariant violations found.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro.obs.audit.auditor import InvariantAuditor
from repro.obs.bus import ObsEvent


def _load_events(path: str) -> Any:
    """The ``events`` list of one dump, or an error string."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return f"error: cannot read {path}: {error}"
    if not isinstance(raw, dict):
        return (f"error: {path}: expected a JSON object "
                f"(got {type(raw).__name__})")
    events = raw.get("events")
    if not isinstance(events, list):
        return (f"error: {path}: no \"events\" list — was this dump "
                f"written by Observability.save()?")
    return events


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.audit",
        description="Replay a saved obs dump through the invariant auditor.",
    )
    parser.add_argument("path", help="trace JSON written by Observability.save"
                                     " or a soak segment directory")
    parser.add_argument("--json", action="store_true",
                        help="print findings as a JSON array")
    args = parser.parse_args(argv)
    if os.path.isdir(args.path):
        from repro.obs.soak.segments import segment_paths

        paths = segment_paths(args.path)
        if not paths:
            print(f"error: {args.path} is a directory without "
                  f"segment-*.trace.json files", file=sys.stderr)
            return 1
    else:
        paths = [args.path]
    events: List[Dict[str, Any]] = []
    for path in paths:
        loaded = _load_events(path)
        if isinstance(loaded, str):
            print(loaded, file=sys.stderr)
            return 1
        events.extend(loaded)
    auditor = InvariantAuditor()
    for entry in events:
        if not isinstance(entry, dict):
            continue
        labels = entry.get("labels")
        auditor.consume(ObsEvent(
            tick=float(entry.get("tick", 0.0)),
            kind=str(entry.get("kind", "")),
            labels=dict(labels) if isinstance(labels, dict) else {},
        ))
    found = auditor.report()
    if args.json:
        print(json.dumps([f.to_dict() for f in found], indent=2,
                         sort_keys=True))
    elif found:
        print(f"{len(found)} finding(s) over {len(events)} events:")
        for finding in found:
            print(f"  {finding}")
    else:
        print(f"clean: {len(events)} events, no findings")
    return 2 if found else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
