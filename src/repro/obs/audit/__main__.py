"""CLI: replay a saved observability dump through the invariant auditor.

Usage::

    python -m repro.obs.audit run.trace.json
    python -m repro.obs.audit run.trace.json --json

The input is a trace document written by ``Observability.save`` (its
``events`` key is the retained bus-event log).  Exit codes: 0 = no
findings, 1 = unusable input, 2 = invariant violations found.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.audit.auditor import InvariantAuditor
from repro.obs.bus import ObsEvent


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.audit",
        description="Replay a saved obs dump through the invariant auditor.",
    )
    parser.add_argument("path", help="trace JSON written by Observability.save")
    parser.add_argument("--json", action="store_true",
                        help="print findings as a JSON array")
    args = parser.parse_args(argv)
    try:
        with open(args.path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {args.path}: {error}", file=sys.stderr)
        return 1
    if not isinstance(raw, dict):
        print(f"error: {args.path}: expected a JSON object "
              f"(got {type(raw).__name__})", file=sys.stderr)
        return 1
    events = raw.get("events")
    if not isinstance(events, list):
        print(f"error: {args.path}: no \"events\" list — was this dump "
              f"written by Observability.save()?", file=sys.stderr)
        return 1
    auditor = InvariantAuditor()
    for entry in events:
        if not isinstance(entry, dict):
            continue
        labels = entry.get("labels")
        auditor.consume(ObsEvent(
            tick=float(entry.get("tick", 0.0)),
            kind=str(entry.get("kind", "")),
            labels=dict(labels) if isinstance(labels, dict) else {},
        ))
    found = auditor.report()
    if args.json:
        print(json.dumps([f.to_dict() for f in found], indent=2,
                         sort_keys=True))
    elif found:
        print(f"{len(found)} finding(s) over {len(events)} events:")
        for finding in found:
            print(f"  {finding}")
    else:
        print(f"clean: {len(events)} events, no findings")
    return 2 if found else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
