"""The Observability hub: one metrics registry + tracer + event bus.

A hub is attached to a :class:`~repro.cluster.cluster.Cluster` (created
automatically, on simulated time) or to a
:class:`~repro.runtime.runtime.LocalRuntime` via
``runtime.attach_observability(hub)``.  Instrumentation points throughout
the codebase accept a hub of ``None`` and degrade to no-ops, so observation
is always optional and never load-bearing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.obs.bus import EventBus
from repro.obs.export import (
    chrome_trace,
    save_trace,
    span_timeline,
    span_tree,
    text_report,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer


def colour_names(colours) -> str:
    """Canonical label value for a colour set (sorted, comma-joined)."""
    return ",".join(sorted(str(colour) for colour in colours))


class Observability:
    """Bundles the three observation primitives behind one attach point."""

    def __init__(self, tick_source: Optional[Callable[[], float]] = None,
                 max_finished_spans: Optional[int] = None,
                 metrics_max_series: Optional[int] = None,
                 max_audit_events: Optional[int] = None):
        self.metrics = MetricsRegistry(
            tick_source, max_series_per_metric=metrics_max_series)
        self.tracer = Tracer(
            tick_source, max_finished_spans=max_finished_spans,
            on_drop=lambda n: self.count("spans_dropped_total", n))
        self.bus = EventBus()
        self._tick_source = tick_source
        # always-on runtime verification: every hub audits its own event
        # stream (repro.obs.audit) and measures real grant->release lock
        # hold times; both are pure subscribers and never block the bus.
        from repro.obs.audit.auditor import InvariantAuditor
        from repro.obs.audit.holdtime import LockHoldTracker

        if max_audit_events is not None:
            self.auditor = InvariantAuditor(metrics=self.metrics,
                                            max_events=max_audit_events)
        else:
            self.auditor = InvariantAuditor(metrics=self.metrics)
        self.bus.subscribe(self.auditor.consume)
        self.hold_times = LockHoldTracker(self.metrics)
        self.bus.subscribe(self.hold_times.consume)
        # perf-observatory attach points (repro.obs.perf); populated by
        # TimeSeriesSampler / FlightRecorder constructors when used.
        self.sampler = None
        self.flight = None
        # causal-attribution attach point (repro.obs.postmortem); populated
        # by PostmortemEngine when one is attached to this hub.
        self.postmortem = None
        # live-introspection attach point (repro.obs.introspect); populated
        # by ClusterInspector when one is attached to this hub's cluster.
        self.inspector = None
        # service-level-objective attach point (repro.obs.slo); populated
        # by SLOEngine when one is attached to this hub.
        self.slo = None

    def now(self) -> float:
        """Current time from the tick source (0.0 when none is attached)."""
        if self._tick_source is not None:
            return self._tick_source()
        return 0.0

    # -- recording shorthands ------------------------------------------------

    def count(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Increment the counter ``name{labels}`` by ``amount``."""
        self.metrics.counter(name, **labels).inc(amount)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record ``value`` into the histogram ``name{labels}``."""
        self.metrics.histogram(name, **labels).observe(value)

    def span(self, name: str, parent: Optional[Any] = None,
             kind: str = "internal", node: str = "", **attrs: Any) -> Span:
        """Start a trace span and announce it on the event bus.

        ``parent`` is a :class:`~repro.obs.tracing.Span` or an encoded
        span context carried over RPC; the returned span must be
        ``finish()``-ed by the caller.
        """
        span = self.tracer.start_span(name, parent=parent, kind=kind,
                                      node=node, **attrs)
        self.bus.emit(span.start, "span.start", name=name, node=node,
                      span_kind=kind)
        return span

    def emit(self, kind: str, **labels: Any) -> None:
        """Publish an event on the bus, stamped with :meth:`now`."""
        self.bus.emit(self.now(), kind, **labels)

    # -- export shorthands -----------------------------------------------------

    def dump(self) -> Dict[str, Any]:
        """JSON-able snapshot of every metric instrument."""
        return self.metrics.dump()

    def report(self) -> str:
        """Human-readable metrics summary (counters, gauges, quantiles)."""
        return text_report(self.metrics)

    def chrome_trace(self) -> Dict[str, Any]:
        """Spans as a Chrome-trace document (chrome://tracing, Perfetto)."""
        return chrome_trace(self.tracer)

    def span_tree(self, trace_id: Optional[str] = None) -> str:
        """Render finished spans as indented trees, one per trace."""
        return span_tree(self.tracer, trace_id=trace_id)

    def span_timeline(self, width: int = 60,
                      trace_id: Optional[str] = None) -> str:
        """Render finished spans as an ASCII timeline ``width`` columns wide."""
        return span_timeline(self.tracer, width=width, trace_id=trace_id)

    def save(self, path: str, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Write spans + metrics + retained events to ``path`` as one document.

        Attached perf-observatory artifacts (flight-recorder ring,
        sampler timeline) ride along under ``extra``; the result is what
        ``python -m repro.obs.report`` / ``repro.obs.audit`` consume.
        """
        extra = dict(extra) if extra else {}
        if self.flight is not None:
            extra.setdefault("flight_recorder", self.flight.dump())
        if self.sampler is not None:
            extra.setdefault("timeline", self.sampler.timeline())
        if self.postmortem is not None:
            extra.setdefault("postmortem", self.postmortem.dump())
        if self.inspector is not None:
            extra.setdefault("introspection", self.inspector.dump())
        if self.slo is not None:
            extra.setdefault("slo", self.slo.dump())
        return save_trace(path, tracer=self.tracer, metrics=self.metrics,
                          extra=extra or None,
                          events=self.auditor.event_dicts())
