"""The perf-gate CLI: ``python -m repro.obs.perf compare``.

Diffs a directory of freshly produced ``BENCH_*.json`` scenario documents
(see ``benchmarks/scenarios.py``) against the checked-in baselines and
exits non-zero on regression, so CI can gate merges on simulated-time
performance:

    python benchmarks/scenarios.py --out /tmp/bench
    python -m repro.obs.perf compare --baseline . --current /tmp/bench

Exit codes: 0 — within tolerance; 2 — at least one gated deviation
(metric outside its band, metric vanished, scenario skipped); 1 —
operational error (unreadable directory, malformed JSON).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs.perf.compare import (
    DEFAULT_ABS_TOLERANCE,
    DEFAULT_REL_TOLERANCE,
    compare_trees,
    load_bench_files,
)


def _cmd_compare(args: argparse.Namespace) -> int:
    try:
        baselines = load_bench_files(args.baseline)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load baselines from {args.baseline}: {exc}",
              file=sys.stderr)
        return 1
    try:
        runs = load_bench_files(args.current)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load run results from {args.current}: {exc}",
              file=sys.stderr)
        return 1
    if not baselines and not runs:
        print(f"error: no BENCH_*.json in {args.baseline} or {args.current}",
              file=sys.stderr)
        return 1

    deviations = compare_trees(args.baseline, args.current,
                               rel_tolerance=args.rel_tolerance,
                               abs_tolerance=args.abs_tolerance)
    failing = [d for d in deviations if d.failing]
    notices = [d for d in deviations if not d.failing]

    print(f"perf gate: {len(baselines)} baseline scenario(s), "
          f"{len(runs)} run scenario(s), tolerance ±{args.rel_tolerance:.0%}")
    for deviation in notices:
        print(f"  note: {deviation.describe()}")
    if failing:
        print(f"\n{len(failing)} regression(s):", file=sys.stderr)
        for deviation in failing:
            print(f"  FAIL: {deviation.describe()}", file=sys.stderr)
        return 2
    print("ok: all gated metrics within tolerance")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.perf",
        description="performance observatory tooling",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compare = commands.add_parser(
        "compare", help="diff BENCH_*.json runs against checked-in baselines")
    compare.add_argument("--baseline", default=".",
                         help="directory with baseline BENCH_*.json files")
    compare.add_argument("--current", required=True,
                         help="directory with the candidate run's files")
    compare.add_argument("--rel-tolerance", type=float,
                         default=DEFAULT_REL_TOLERANCE,
                         help="two-sided relative tolerance band")
    compare.add_argument("--abs-tolerance", type=float,
                         default=DEFAULT_ABS_TOLERANCE,
                         help="absolute slack for near-zero baselines")
    compare.set_defaults(func=_cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
