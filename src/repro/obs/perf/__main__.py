"""The performance-observatory CLI: perf gate and timeline rendering.

``compare`` diffs a directory of freshly produced ``BENCH_*.json``
scenario documents (see ``benchmarks/scenarios.py``) against the
checked-in baselines and exits non-zero on regression, so CI can gate
merges on simulated-time performance:

    python benchmarks/scenarios.py --out /tmp/bench
    python -m repro.obs.perf compare --baseline . --current /tmp/bench

Wall-clock ``info`` entries are ignored by default; ``--gate-wall`` checks
them too, with a wide band (``--wall-tolerance``, baseline
``wall_tolerances`` overrides) — for stable dedicated runners only.

``timeline`` renders a sampler timeline (a raw ``sampler.timeline()``
document or an ``Observability.save`` dump carrying ``extra.timeline``)
as text sparklines, or as a self-contained HTML page with ``--html``:

    python -m repro.obs.perf timeline run.trace.json
    python -m repro.obs.perf timeline run.trace.json --html timeline.html

Exit codes: 0 — within tolerance / rendered; 2 — at least one gated
deviation (metric outside its band, metric vanished, scenario skipped);
1 — operational error (unreadable input, malformed JSON, no timeline).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.perf.compare import (
    DEFAULT_ABS_TOLERANCE,
    DEFAULT_REL_TOLERANCE,
    DEFAULT_WALL_REL_TOLERANCE,
    compare_trees,
    load_bench_files,
)
from repro.obs.perf.timeline_view import timeline_html, timeline_text


def _cmd_compare(args: argparse.Namespace) -> int:
    try:
        baselines = load_bench_files(args.baseline)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load baselines from {args.baseline}: {exc}",
              file=sys.stderr)
        return 1
    try:
        runs = load_bench_files(args.current)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load run results from {args.current}: {exc}",
              file=sys.stderr)
        return 1
    if not baselines and not runs:
        print(f"error: no BENCH_*.json in {args.baseline} or {args.current}",
              file=sys.stderr)
        return 1

    deviations = compare_trees(args.baseline, args.current,
                               rel_tolerance=args.rel_tolerance,
                               abs_tolerance=args.abs_tolerance,
                               gate_wall=args.gate_wall,
                               wall_rel_tolerance=args.wall_tolerance)
    failing = [d for d in deviations if d.failing]
    notices = [d for d in deviations if not d.failing]

    wall_note = (f", wall ±{args.wall_tolerance:.0%}" if args.gate_wall
                 else "")
    print(f"perf gate: {len(baselines)} baseline scenario(s), "
          f"{len(runs)} run scenario(s), tolerance "
          f"±{args.rel_tolerance:.0%}{wall_note}")
    for deviation in notices:
        print(f"  note: {deviation.describe()}")
    if failing:
        print(f"\n{len(failing)} regression(s):", file=sys.stderr)
        for deviation in failing:
            print(f"  FAIL: {deviation.describe()}", file=sys.stderr)
        return 2
    print("ok: all gated metrics within tolerance")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    try:
        with open(args.path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    if not isinstance(raw, dict):
        print(f"error: {args.path}: expected a JSON object "
              f"(got {type(raw).__name__})", file=sys.stderr)
        return 1
    # a full Observability.save dump, or a bare sampler.timeline() doc
    timeline = (raw.get("extra") or {}).get("timeline") \
        if "points" not in raw else raw
    if not isinstance(timeline, dict) or "points" not in timeline:
        print(f"error: {args.path}: no timeline — pass a sampler "
              f"timeline document or a dump saved with a sampler "
              f"attached", file=sys.stderr)
        return 1
    if args.html:
        document = timeline_html(timeline, title=args.title or args.path)
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(f"wrote {args.html}")
    else:
        print(timeline_text(timeline, width=args.width))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.perf",
        description="performance observatory tooling",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compare = commands.add_parser(
        "compare", help="diff BENCH_*.json runs against checked-in baselines")
    compare.add_argument("--baseline", default=".",
                         help="directory with baseline BENCH_*.json files")
    compare.add_argument("--current", required=True,
                         help="directory with the candidate run's files")
    compare.add_argument("--rel-tolerance", type=float,
                         default=DEFAULT_REL_TOLERANCE,
                         help="two-sided relative tolerance band")
    compare.add_argument("--abs-tolerance", type=float,
                         default=DEFAULT_ABS_TOLERANCE,
                         help="absolute slack for near-zero baselines")
    compare.add_argument("--gate-wall", action="store_true",
                         help="also gate wall-clock info metrics (opt in: "
                              "only meaningful on a stable runner)")
    compare.add_argument("--wall-tolerance", type=float,
                         default=DEFAULT_WALL_REL_TOLERANCE,
                         help="two-sided band for wall-clock gating")
    compare.set_defaults(func=_cmd_compare)

    timeline = commands.add_parser(
        "timeline", help="render a sampler timeline as text or HTML")
    timeline.add_argument("path", help="obs dump (extra.timeline) or a raw "
                                       "sampler timeline JSON")
    timeline.add_argument("--html", metavar="OUT", default=None,
                          help="write a self-contained HTML page here "
                               "instead of printing text")
    timeline.add_argument("--title", default=None,
                          help="HTML page title (defaults to the path)")
    timeline.add_argument("--width", type=int, default=60,
                          help="sparkline width for text output")
    timeline.set_defaults(func=_cmd_timeline)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
