"""The performance observatory: time-series metrics, flight recorder,
self-accounting, and the perf-regression gate.

Point-in-time dumps (PR 1) show *where* a run ended up; this package shows
how it *evolved* and whether it *regressed*:

- :class:`TimeSeriesSampler` — driven by the sim kernel clock
  (:meth:`repro.sim.kernel.Kernel.every`), periodically snapshots hub
  metrics into compact per-colour timelines: commit/abort throughput,
  lock-wait and 2PC-round latency quantiles, and probed gauges such as
  in-doubt object counts.
- :class:`FlightRecorder` — an always-on bounded ring buffer over the obs
  event bus with deterministic probabilistic sampling, so observability
  stays attached under heavy load at fixed memory; the ring is dumped on
  any auditor finding or test failure.
- :class:`ObsOverheadMeter` — self-accounting: the observability layer's
  own cost (events/sec, wall-time share of the run).  When no hub is
  attached every instrumentation point degrades to a single
  ``if self.obs is None`` branch — the documented cheap no-op path.
- :mod:`repro.obs.perf.compare` — diffs a scenario run's ``BENCH_*.json``
  against checked-in baselines with tolerance bands; the
  ``python -m repro.obs.perf compare`` CLI exits non-zero on regression
  and is wired into CI as a perf gate (see ``benchmarks/scenarios.py``).
"""

from repro.obs.perf.compare import (
    Deviation,
    compare_documents,
    compare_trees,
    load_bench_files,
)
from repro.obs.perf.overhead import ObsOverheadMeter
from repro.obs.perf.recorder import FlightRecorder
from repro.obs.perf.sampler import TimeSeriesSampler
from repro.obs.perf.timeline_view import timeline_html, timeline_text

__all__ = [
    "Deviation",
    "FlightRecorder",
    "ObsOverheadMeter",
    "TimeSeriesSampler",
    "compare_documents",
    "compare_trees",
    "load_bench_files",
    "timeline_html",
    "timeline_text",
]
