"""Perf-regression gate: diff scenario runs against checked-in baselines.

Baselines are ``BENCH_<scenario>.json`` files at the repository root
(regenerated with ``python benchmarks/scenarios.py --out .``); a candidate
run writes the same files to another directory, and :func:`compare_trees`
diffs the two with tolerance bands:

- every numeric entry under a document's ``metrics`` key is *gated*: it
  must stay within ``rel_tolerance`` of the baseline (two-sided — the
  scenarios run on simulated time, so drift in either direction means the
  system's behaviour changed, not the weather);
- per-metric overrides live in the baseline's ``tolerances`` map;
- entries under ``info`` (wall-clock numbers, overhead shares) are not
  gated by default — they measure the machine as much as the system.
  Opting in (``--gate-wall`` / ``gate_wall=True``) checks them too, with
  a much wider default band (:data:`DEFAULT_WALL_REL_TOLERANCE`) and
  per-metric overrides in the baseline's ``wall_tolerances`` map, so a
  stable runner can still catch an order-of-magnitude wall-clock trend
  without cross-machine CI flakiness;
- a scenario present in the baselines but absent from the run fails the
  gate (coverage loss is a regression too); a new scenario in the run is
  reported but passes (its baseline lands with the PR that adds it).

Legacy figure documents (``rows`` lists, e.g. ``BENCH_commit_fanout.json``)
are normalised by flattening each row's numeric fields, so the old
baselines are gated by the same machinery.
"""

from __future__ import annotations

import glob
import json
import math
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: default two-sided relative tolerance band
DEFAULT_REL_TOLERANCE = 0.10
#: default band for opt-in wall-clock gating: wall numbers move with the
#: host, so only big trends (just under a 2x slowdown) should trip CI
DEFAULT_WALL_REL_TOLERANCE = 0.75
#: absolute slack so zero-valued baselines don't demand exact zeros
DEFAULT_ABS_TOLERANCE = 1e-9

#: deviation kinds that fail the gate ("wall-regression" only ever exists
#: when wall gating was requested, so listing it here costs nothing on
#: default runs)
FAILING_KINDS = frozenset(("regression", "missing-metric", "missing-scenario",
                           "wall-regression"))


@dataclass(frozen=True)
class Deviation:
    """One difference between a run and its baseline."""

    scenario: str
    kind: str                    # regression | missing-metric | new-metric | ...
    metric: str = ""
    baseline: Optional[float] = None
    current: Optional[float] = None
    tolerance: Optional[float] = None

    @property
    def failing(self) -> bool:
        return self.kind in FAILING_KINDS

    def describe(self) -> str:
        if self.kind in ("regression", "wall-regression"):
            delta = ""
            if self.baseline:
                delta = f" ({(self.current - self.baseline) / self.baseline:+.1%})"
            wall = " [wall]" if self.kind == "wall-regression" else ""
            return (f"[{self.scenario}] {self.metric}{wall}: "
                    f"{self.current:g} vs baseline {self.baseline:g}{delta}, "
                    f"tolerance ±{self.tolerance:.0%}")
        if self.kind == "missing-metric":
            return (f"[{self.scenario}] {self.metric}: in baseline "
                    f"({self.baseline:g}) but absent from the run")
        if self.kind == "missing-wall-metric":
            return (f"[{self.scenario}] {self.metric} [wall]: in baseline "
                    f"({self.baseline:g}) but absent from the run")
        if self.kind == "new-metric":
            return (f"[{self.scenario}] {self.metric}: new metric "
                    f"({self.current:g}), no baseline yet")
        if self.kind == "missing-scenario":
            return f"[{self.scenario}] baseline exists but the run skipped it"
        if self.kind == "new-scenario":
            return f"[{self.scenario}] new scenario, no baseline yet"
        return f"[{self.scenario}] {self.kind} {self.metric}"


def _flatten_rows(doc: Dict[str, Any]) -> Dict[str, float]:
    """Gated metrics from a legacy figure document's ``rows`` list."""
    out: Dict[str, float] = {}
    for index, row in enumerate(doc.get("rows", [])):
        if not isinstance(row, dict):
            continue
        for key in sorted(row):
            value = row[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            out[f"rows[{index}].{key}"] = float(value)
    return out


def gated_metrics(doc: Dict[str, Any]) -> Dict[str, float]:
    """The numeric entries of a document that the gate checks."""
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        return {
            key: float(value) for key, value in metrics.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
    return _flatten_rows(doc)


def gated_wall_metrics(doc: Dict[str, Any]) -> Dict[str, float]:
    """Numeric leaves of a document's ``info`` section, dotted-key flat.

    These are the wall-clock/overhead numbers that opt-in wall gating
    checks (``info.noop_path.nanos_per_call`` and friends); non-numeric
    leaves and non-dict sections are skipped.
    """
    out: Dict[str, float] = {}

    def walk(prefix: str, value: Any) -> None:
        if isinstance(value, dict):
            for key in sorted(value):
                walk(f"{prefix}.{key}", value[key])
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            out[prefix] = float(value)

    info = doc.get("info")
    if isinstance(info, dict):
        walk("info", info)
    return out


def scenario_name(doc: Dict[str, Any], path: str = "") -> str:
    name = doc.get("scenario") or doc.get("figure")
    if name:
        return str(name)
    stem = os.path.basename(path)
    if stem.startswith("BENCH_"):
        stem = stem[len("BENCH_"):]
    return stem.rsplit(".json", 1)[0] or "unnamed"


def load_bench_files(root: str) -> Dict[str, Tuple[str, Dict[str, Any]]]:
    """scenario name -> (path, document) for every BENCH_*.json under root."""
    found: Dict[str, Tuple[str, Dict[str, Any]]] = {}
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        if not isinstance(doc, dict):
            continue
        found[scenario_name(doc, path)] = (path, doc)
    return found


def compare_documents(scenario: str, current: Dict[str, Any],
                      baseline: Dict[str, Any],
                      rel_tolerance: float = DEFAULT_REL_TOLERANCE,
                      abs_tolerance: float = DEFAULT_ABS_TOLERANCE,
                      gate_wall: bool = False,
                      wall_rel_tolerance: float = DEFAULT_WALL_REL_TOLERANCE,
                      ) -> List[Deviation]:
    """Deviations of one scenario run against its baseline document."""
    overrides = baseline.get("tolerances", {})
    base_metrics = gated_metrics(baseline)
    run_metrics = gated_metrics(current)
    deviations: List[Deviation] = []
    for metric in sorted(base_metrics):
        expected = base_metrics[metric]
        tolerance = float(overrides.get(metric, rel_tolerance))
        if metric not in run_metrics:
            deviations.append(Deviation(scenario=scenario, kind="missing-metric",
                                        metric=metric, baseline=expected))
            continue
        actual = run_metrics[metric]
        if not math.isclose(actual, expected, rel_tol=tolerance,
                            abs_tol=abs_tolerance):
            deviations.append(Deviation(
                scenario=scenario, kind="regression", metric=metric,
                baseline=expected, current=actual, tolerance=tolerance,
            ))
    for metric in sorted(set(run_metrics) - set(base_metrics)):
        deviations.append(Deviation(scenario=scenario, kind="new-metric",
                                    metric=metric, current=run_metrics[metric]))
    if gate_wall:
        deviations.extend(_compare_wall(
            scenario, current, baseline,
            wall_rel_tolerance=wall_rel_tolerance,
            abs_tolerance=abs_tolerance))
    return deviations


def _compare_wall(scenario: str, current: Dict[str, Any],
                  baseline: Dict[str, Any],
                  wall_rel_tolerance: float = DEFAULT_WALL_REL_TOLERANCE,
                  abs_tolerance: float = DEFAULT_ABS_TOLERANCE,
                  ) -> List[Deviation]:
    """Opt-in wall-clock trend check over the ``info`` sections.

    A wall metric missing from the run is a note, not a failure — info
    sections are optional and host-dependent, unlike gated metrics.
    """
    overrides = baseline.get("wall_tolerances", {})
    base_wall = gated_wall_metrics(baseline)
    run_wall = gated_wall_metrics(current)
    deviations: List[Deviation] = []
    for metric in sorted(base_wall):
        expected = base_wall[metric]
        tolerance = float(overrides.get(metric, wall_rel_tolerance))
        if metric not in run_wall:
            deviations.append(Deviation(scenario=scenario,
                                        kind="missing-wall-metric",
                                        metric=metric, baseline=expected))
            continue
        actual = run_wall[metric]
        if not math.isclose(actual, expected, rel_tol=tolerance,
                            abs_tol=abs_tolerance):
            deviations.append(Deviation(
                scenario=scenario, kind="wall-regression", metric=metric,
                baseline=expected, current=actual, tolerance=tolerance,
            ))
    return deviations


def compare_trees(baseline_root: str, current_root: str,
                  rel_tolerance: float = DEFAULT_REL_TOLERANCE,
                  abs_tolerance: float = DEFAULT_ABS_TOLERANCE,
                  gate_wall: bool = False,
                  wall_rel_tolerance: float = DEFAULT_WALL_REL_TOLERANCE,
                  ) -> List[Deviation]:
    """Deviations of every scenario in ``current_root`` vs the baselines."""
    baselines = load_bench_files(baseline_root)
    runs = load_bench_files(current_root)
    deviations: List[Deviation] = []
    for scenario in sorted(baselines):
        if scenario not in runs:
            deviations.append(Deviation(scenario=scenario,
                                        kind="missing-scenario"))
            continue
        _, run_doc = runs[scenario]
        _, base_doc = baselines[scenario]
        deviations.extend(compare_documents(
            scenario, run_doc, base_doc,
            rel_tolerance=rel_tolerance, abs_tolerance=abs_tolerance,
            gate_wall=gate_wall, wall_rel_tolerance=wall_rel_tolerance,
        ))
    for scenario in sorted(set(runs) - set(baselines)):
        deviations.append(Deviation(scenario=scenario, kind="new-scenario"))
    return deviations
