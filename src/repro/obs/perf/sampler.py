"""Time-series sampling of hub metrics on the simulated clock.

A :class:`TimeSeriesSampler` rides a :meth:`Kernel.every
<repro.sim.kernel.Kernel.every>` periodic timer and, at each firing,
appends one *point* to its timeline: per-colour commit/abort/permanence
throughput over the interval (counter deltas), latency quantiles of the
lock-wait and 2PC-prepare histograms, and whatever gauges the owner probed
in (in-doubt object counts, live mirrors, pending RPCs).

Everything is derived from the metrics registry and the sim clock, so the
timeline of a seeded run is bit-for-bit reproducible — unless the opt-in
``process_probes`` are on, which add host-interpreter GC/allocation
pressure (real memory, not simulated) to each point.  Memory is bounded:
when the timeline reaches ``max_points`` it is decimated (every second
point dropped, sampling stride doubled), trading resolution for a fixed
footprint — the same run always decimates at the same firings.
"""

from __future__ import annotations

import gc
import sys
from typing import Any, Callable, Dict, List, Tuple

#: counters summarised per colour at each point (label -> metric name)
_COLOUR_COUNTERS = (
    ("committed", "actions_committed_total"),
    ("aborted", "actions_aborted_total"),
    ("permanent", "colour_permanent_total"),
    ("inherited", "colour_inherited_total"),
)

#: histograms whose colour-labelled quantiles enter each point
_COLOUR_HISTOGRAMS = (
    ("lock_wait", "lock_wait_time"),
    ("twopc_prepare", "twopc_prepare_time"),
    ("commit_latency", "commit_latency"),
)


class TimeSeriesSampler:
    """Periodic snapshots of an Observability hub into per-colour timelines."""

    def __init__(self, hub, interval: float = 5.0, max_points: int = 2048,
                 process_probes: bool = False):
        if max_points < 2:
            raise ValueError(f"max_points must be >= 2, got {max_points}")
        self.hub = hub
        self.interval = interval
        self.max_points = max_points
        #: opt-in host-process pressure probes (``process`` section per
        #: point): GC generation counters, cumulative collections, live
        #: tracked objects and allocated blocks.  Off by default because
        #: the values come from the *host* interpreter, not the simulation
        #: — a timeline with them is no longer bit-for-bit reproducible.
        self.process_probes = process_probes
        self.points: List[Dict[str, Any]] = []
        #: current sampling stride (1 = every firing; doubled on decimation)
        self.stride = 1
        self.decimations = 0
        self._fires = 0
        self._timer = None
        self._probes: List[Tuple[str, Callable[[], float]]] = []
        self._point_listeners: List[Callable[[Dict[str, Any]], None]] = []
        #: (metric, colour) -> cumulative value at the previous point
        self._last_counts: Dict[Tuple[str, str], float] = {}
        hub.sampler = self

    # -- wiring ---------------------------------------------------------------

    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Sample ``fn()`` into the ``gauges`` section of every point."""
        self._probes.append((name, fn))

    def add_point_listener(self, fn: Callable[[Dict[str, Any]], None]) -> None:
        """Call ``fn(point)`` after every sampled point (the SLO engine's
        clock); listener exceptions propagate — sampling is load-bearing
        for objective evaluation, not best-effort."""
        self._point_listeners.append(fn)

    def attach(self, kernel) -> "TimeSeriesSampler":
        """Start sampling on ``kernel``'s clock (see ``Kernel.every``)."""
        if self._timer is not None:
            raise RuntimeError("sampler already attached")
        self._timer = kernel.every(self.interval, self._tick)
        return self

    def detach(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        self._fires += 1
        if self._fires % self.stride == 0:
            self.sample()

    # -- sampling -------------------------------------------------------------

    def sample(self) -> Dict[str, Any]:
        """Take one point now (also callable manually, e.g. at run end)."""
        metrics = self.hub.metrics
        point: Dict[str, Any] = {"tick": self.hub.now()}
        colours: Dict[str, Dict[str, Any]] = {}
        for key, metric in _COLOUR_COUNTERS:
            for labels, instrument in sorted(
                    metrics.series(metric), key=lambda kv: sorted(kv[0].items())):
                colour = labels.get("colour")
                if colour is None:
                    continue
                total = instrument.value
                last = self._last_counts.get((metric, colour), 0.0)
                self._last_counts[(metric, colour)] = total
                delta = total - last
                if delta:
                    row = colours.setdefault(colour, {})
                    row[key] = row.get(key, 0.0) + delta
        for key, metric in _COLOUR_HISTOGRAMS:
            merged: Dict[str, List] = {}
            for labels, histogram in metrics.series(metric):
                colour = labels.get("colour")
                if colour is None:
                    continue
                merged.setdefault(colour, []).append(histogram)
            for colour, histograms in sorted(merged.items()):
                count = sum(h.count for h in histograms)
                total = sum(h.total for h in histograms)
                last = self._last_counts.get((metric, colour), 0.0)
                last_sum = self._last_counts.get((metric + "/sum", colour), 0.0)
                self._last_counts[(metric, colour)] = count
                self._last_counts[(metric + "/sum", colour)] = total
                if count == last:
                    continue  # no new samples this interval: stay compact
                row = colours.setdefault(colour, {})
                row[f"{key}_count"] = count - last
                # window mean: exact over just this interval's observations
                row[f"{key}_mean"] = (total - last_sum) / (count - last)
                # cumulative quantiles over the widest labelled series —
                # cheap, deterministic, and good enough for a trend line
                widest = max(histograms, key=lambda h: h.count)
                row[f"{key}_p50"] = widest.percentile(50)
                row[f"{key}_p95"] = widest.percentile(95)
        if colours:
            point["colours"] = {c: colours[c] for c in sorted(colours)}
        if self._probes:
            point["gauges"] = {name: float(fn())
                               for name, fn in self._probes}
        if self.process_probes:
            point["process"] = self._process_sample()
        self.points.append(point)
        for listener in self._point_listeners:
            listener(point)
        if len(self.points) >= self.max_points:
            self._decimate()
        return point

    @staticmethod
    def _process_sample() -> Dict[str, float]:
        """Host-interpreter allocation pressure at this instant.

        ``gc_gen*`` are the collector's per-generation allocation counters,
        ``gc_collections`` the cumulative collection count across
        generations, ``objects`` the number of live GC-tracked objects
        (the expensive probe — a full ``gc.get_objects()`` walk) and
        ``alloc_blocks`` the interpreter's allocated memory blocks.
        """
        counts = gc.get_count()
        collections = float(sum(s.get("collections", 0)
                                for s in gc.get_stats()))
        return {
            "gc_gen0": float(counts[0]),
            "gc_gen1": float(counts[1]),
            "gc_gen2": float(counts[2]),
            "gc_collections": collections,
            "objects": float(len(gc.get_objects())),
            "alloc_blocks": float(sys.getallocatedblocks()),
        }

    def _decimate(self) -> None:
        self.points = self.points[::2]
        self.stride *= 2
        self.decimations += 1

    # -- export ---------------------------------------------------------------

    def timeline(self) -> Dict[str, Any]:
        """JSON-able view of the whole timeline."""
        return {
            "interval": self.interval,
            "stride": self.stride,
            "decimations": self.decimations,
            "points": list(self.points),
        }

    def colour_series(self, colour: str, key: str) -> List[Tuple[float, float]]:
        """(tick, value) pairs of one per-colour key across the timeline."""
        out: List[Tuple[float, float]] = []
        for point in self.points:
            row = point.get("colours", {}).get(colour)
            if row is not None and key in row:
                out.append((point["tick"], row[key]))
        return out
