"""Self-accounting: what does observability itself cost?

An :class:`ObsOverheadMeter` wraps a hub's event-bus fan-out with a
wall-clock stopwatch, so any run can report how much real time the
observability layer consumed (bus publish + every subscriber: metrics,
auditor, hold-time tracker, flight recorder) relative to the run as a
whole, plus events/sec throughput.

Wall-clock readings are inherently non-deterministic, so the meter never
writes into the metrics registry (whose dumps must stay reproducible);
its numbers live in :meth:`report` and travel in the *ungated* ``info``
section of scenario BENCH files.

**The no-op path.**  Every instrumentation point in the codebase accepts
``obs=None`` and degrades to one attribute check (``if self.obs is None``)
— no event construction, no label dicts, no locks.  That branch is the
documented cheap path for running dark; :func:`measure_noop_path` times it
so the claim is checkable (it is ~tens of nanoseconds per call site).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional


class ObsOverheadMeter:
    """Measures the observability layer's own wall-time share."""

    def __init__(self, hub):
        self.hub = hub
        self.events = 0
        self.obs_seconds = 0.0
        self._original_publish = None
        self._started: Optional[float] = None
        self._stopped: Optional[float] = None

    # -- lifecycle -------------------------------------------------------------

    def attach(self) -> "ObsOverheadMeter":
        """Start metering: wraps ``hub.bus.publish`` in a stopwatch."""
        if self._original_publish is not None:
            raise RuntimeError("overhead meter already attached")
        bus = self.hub.bus
        original = bus.publish
        self._original_publish = original
        self._started = time.perf_counter()
        self._stopped = None

        def timed_publish(event):
            begin = time.perf_counter()
            try:
                original(event)
            finally:
                self.obs_seconds += time.perf_counter() - begin
                self.events += 1

        bus.publish = timed_publish
        return self

    def detach(self) -> None:
        """Stop metering and restore the bus."""
        if self._original_publish is None:
            return
        self.hub.bus.publish = self._original_publish
        self._original_publish = None
        self._stopped = time.perf_counter()

    def __enter__(self) -> "ObsOverheadMeter":
        return self.attach()

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # -- accounting ------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """Events seen, obs wall time, run wall time, and the obs share."""
        if self._started is None:
            raise RuntimeError("overhead meter was never attached")
        end = self._stopped if self._stopped is not None else time.perf_counter()
        run_seconds = max(end - self._started, 1e-12)
        return {
            "events_total": self.events,
            "events_per_wall_second": self.events / run_seconds,
            "obs_wall_seconds": self.obs_seconds,
            "run_wall_seconds": run_seconds,
            "obs_share": self.obs_seconds / run_seconds,
        }


def measure_noop_path(iterations: int = 100_000) -> Dict[str, float]:
    """Time the ``obs is None`` branch every instrumentation point takes
    when no hub is attached — nanoseconds per call, for the docs."""

    class _Dark:
        __slots__ = ("obs",)

        def __init__(self):
            self.obs = None

        def touch(self) -> None:
            if self.obs is not None:  # pragma: no cover - never taken
                self.obs.count("x")

    dark = _Dark()
    begin = time.perf_counter()
    for _ in range(iterations):
        dark.touch()
    elapsed = time.perf_counter() - begin
    return {
        "iterations": float(iterations),
        "seconds_total": elapsed,
        "nanos_per_call": elapsed / iterations * 1e9,
    }
