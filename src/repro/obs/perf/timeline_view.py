"""Render a sampler timeline as text sparklines or a single-file HTML page.

Input is the JSON-able document of :meth:`TimeSeriesSampler.timeline
<repro.obs.perf.sampler.TimeSeriesSampler.timeline>` (either standalone or
embedded as ``extra.timeline`` of an ``Observability.save`` dump).  The
HTML output is fully self-contained — inline CSS and inline SVG polylines,
no scripts, no external assets — so a CI artifact renders anywhere.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Tuple

#: sparkline glyphs, lowest to highest
_SPARKS = " .:-=+*#%@"

#: SVG stroke palette, cycled across series
_PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
            "#8c564b", "#17becf", "#7f7f7f")

Series = Dict[str, List[Tuple[float, float]]]


def extract_series(timeline: Dict[str, Any]) -> Dict[str, Series]:
    """Per-group named series: ``{group: {name: [(tick, value), ...]}}``.

    Groups are ``colours`` (per-colour counter deltas and latency
    quantiles), ``gauges`` (probed values) and ``process`` (host GC /
    allocation pressure, when sampled).
    """
    groups: Dict[str, Series] = {}

    def put(group: str, name: str, tick: float, value: Any) -> None:
        try:
            number = float(value)
        except (TypeError, ValueError):
            return
        groups.setdefault(group, {}).setdefault(name, []).append(
            (tick, number))

    for point in timeline.get("points", []):
        if not isinstance(point, dict):
            continue
        tick = float(point.get("tick", 0.0))
        for colour, row in (point.get("colours") or {}).items():
            for key, value in row.items():
                put("colours", f"{colour}/{key}", tick, value)
        for section in ("gauges", "process"):
            for key, value in (point.get(section) or {}).items():
                put(section, key, tick, value)
    return groups


def _spark(values: List[float], width: int) -> str:
    if not values:
        return ""
    # squeeze (or stretch) onto `width` buckets, max per bucket
    buckets: List[float] = []
    for index in range(min(width, len(values))):
        lo = index * len(values) // min(width, len(values))
        hi = max(lo + 1, (index + 1) * len(values) // min(width, len(values)))
        buckets.append(max(values[lo:hi]))
    low, high = min(buckets), max(buckets)
    span = (high - low) or 1.0
    top = len(_SPARKS) - 1
    return "".join(_SPARKS[round((v - low) / span * top)] for v in buckets)


def timeline_text(timeline: Dict[str, Any], width: int = 60) -> str:
    """The whole timeline as aligned sparkline rows, one per series."""
    groups = extract_series(timeline)
    points = timeline.get("points", [])
    lines = [f"timeline: {len(points)} point(s), "
             f"interval {timeline.get('interval', '?')} x stride "
             f"{timeline.get('stride', 1)}"]
    if not groups:
        lines.append("  (no series - empty timeline)")
        return "\n".join(lines)
    label_width = max(len(name) for series in groups.values()
                      for name in series)
    for group in sorted(groups):
        lines.append(f"{group}:")
        for name, pairs in sorted(groups[group].items()):
            values = [value for _tick, value in pairs]
            lines.append(
                f"  {name:<{label_width}} |{_spark(values, width)}| "
                f"min {min(values):g} max {max(values):g} "
                f"last {values[-1]:g}")
    return "\n".join(lines)


def _polyline(pairs: List[Tuple[float, float]], t_lo: float, t_hi: float,
              v_lo: float, v_hi: float, w: int, h: int) -> str:
    t_span = (t_hi - t_lo) or 1.0
    v_span = (v_hi - v_lo) or 1.0
    coords = []
    for tick, value in pairs:
        x = (tick - t_lo) / t_span * (w - 2) + 1
        y = h - 1 - (value - v_lo) / v_span * (h - 2)
        coords.append(f"{x:.1f},{y:.1f}")
    return " ".join(coords)


def timeline_html(timeline: Dict[str, Any],
                  title: str = "repro timeline") -> str:
    """A self-contained HTML document: one inline SVG chart per group."""
    groups = extract_series(timeline)
    width, height = 720, 180
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset=\"utf-8\">",
        f"<title>{html.escape(title)}</title>",
        "<style>",
        "body{font:13px/1.4 monospace;margin:1.5em;background:#fdfdfd;"
        "color:#222}",
        "h1{font-size:16px} h2{font-size:14px;margin:1.2em 0 .3em}",
        "svg{background:#fff;border:1px solid #ccc}",
        ".legend span{display:inline-block;margin-right:1em}",
        ".swatch{display:inline-block;width:10px;height:10px;"
        "margin-right:4px}",
        ".meta{color:#777}",
        "</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p class=\"meta\">{len(timeline.get('points', []))} point(s), "
        f"interval {html.escape(str(timeline.get('interval', '?')))} "
        f"&times; stride {html.escape(str(timeline.get('stride', 1)))}, "
        f"{html.escape(str(timeline.get('decimations', 0)))} "
        f"decimation(s)</p>",
    ]
    if not groups:
        parts.append("<p>(empty timeline)</p>")
    for group in sorted(groups):
        series = groups[group]
        ticks = [tick for pairs in series.values() for tick, _v in pairs]
        values = [value for pairs in series.values() for _t, value in pairs]
        t_lo, t_hi = min(ticks), max(ticks)
        v_lo, v_hi = min(values + [0.0]), max(values)
        parts.append(f"<h2>{html.escape(group)}</h2>")
        parts.append(f"<svg viewBox=\"0 0 {width} {height}\" "
                     f"width=\"{width}\" height=\"{height}\">")
        for index, (name, pairs) in enumerate(sorted(series.items())):
            stroke = _PALETTE[index % len(_PALETTE)]
            parts.append(
                f"<polyline fill=\"none\" stroke=\"{stroke}\" "
                f"stroke-width=\"1.5\" points=\""
                + _polyline(pairs, t_lo, t_hi, v_lo, v_hi, width, height)
                + f"\"><title>{html.escape(name)}</title></polyline>")
        parts.append("</svg>")
        legend = []
        for index, name in enumerate(sorted(series)):
            stroke = _PALETTE[index % len(_PALETTE)]
            legend.append(
                f"<span><span class=\"swatch\" "
                f"style=\"background:{stroke}\"></span>"
                f"{html.escape(name)}</span>")
        parts.append("<div class=\"legend\">" + "".join(legend) + "</div>")
        parts.append(f"<p class=\"meta\">ticks [{t_lo:g}, {t_hi:g}], "
                     f"values [{v_lo:g}, {v_hi:g}]</p>")
    parts.append("</body></html>")
    return "\n".join(parts)
