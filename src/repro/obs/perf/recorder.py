"""The flight recorder: an always-on bounded ring over the obs event bus.

Dump-everything event retention (the auditor keeps up to 200k events) is
fine for tests but not for long runs; the flight recorder is the
fixed-memory alternative that can stay attached under heavy load.  It
subscribes to the hub's event bus and keeps the last ``capacity`` events
in a ring, *probabilistically sampling* the high-volume kinds (span
starts, lock traffic) at ``sample_rate`` while always retaining the rare,
diagnosis-critical kinds (2PC lifecycle, restarts, routing decisions).

Sampling is deterministic: decisions come from a seeded PRNG consuming one
draw per sampled-kind event, never from wall-clock or global randomness,
so a seeded simulation replays to an identical ring.

When the online invariant auditor raises a finding, the recorder freezes a
snapshot of the ring (the black box as of the failure); snapshots and the
live ring both travel in ``Observability.save`` dumps, so a failing test's
artifact contains the last-N-events context even when the full event log
was truncated.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from typing import Any, Deque, Dict, List

from repro.obs.bus import ObsEvent

#: kinds always retained regardless of sample_rate: low-volume, high-value
CRITICAL_KINDS = frozenset((
    "twopc.begin", "twopc.vote", "twopc.decision", "twopc.commit",
    "twopc.abort", "twopc.decision_query", "twopc.end", "twopc.downgrade",
    "commit.route", "colour.permanent", "node.restart", "node.crash",
    "action.begin", "action.end", "action.failure", "lock.refused",
    "slo.breach", "slo.recovered",
))

#: at most this many finding snapshots are frozen per run
MAX_SNAPSHOTS = 4


class FlightRecorder:
    """Bounded, sampled event ring attached to an Observability hub."""

    def __init__(self, hub, capacity: int = 4096, sample_rate: float = 1.0,
                 seed: int = 0, critical_kinds=CRITICAL_KINDS):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.hub = hub
        self.capacity = capacity
        self.sample_rate = sample_rate
        self.critical_kinds = frozenset(critical_kinds)
        self._rng = random.Random(seed)
        self._mutex = threading.Lock()
        self._seq = 0
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        #: events that fell out of the ring / were not sampled
        self.evicted = 0
        self.skipped = 0
        self.finding_snapshots: List[Dict[str, Any]] = []
        hub.flight = self
        hub.bus.subscribe(self.consume)
        auditor = getattr(hub, "auditor", None)
        if auditor is not None and hasattr(auditor, "add_finding_listener"):
            auditor.add_finding_listener(self._on_finding)

    # -- intake ---------------------------------------------------------------

    def consume(self, event: ObsEvent) -> None:
        with self._mutex:
            self._seq += 1
            if (event.kind not in self.critical_kinds
                    and self.sample_rate < 1.0
                    and self._rng.random() >= self.sample_rate):
                self.skipped += 1
                return
            if len(self._ring) == self.capacity:
                self.evicted += 1
            self._ring.append({
                "seq": self._seq, "tick": event.tick, "kind": event.kind,
                "labels": dict(event.labels),
            })

    def detach(self) -> None:
        self.hub.bus.unsubscribe(self.consume)
        if getattr(self.hub, "flight", None) is self:
            self.hub.flight = None

    # -- black-box dumps -------------------------------------------------------

    def _on_finding(self, finding) -> None:
        """Freeze the ring as of this auditor finding (bounded)."""
        self.freeze(str(finding), kind=getattr(finding, "kind", ""))

    def freeze(self, label: str, kind: str = "finding") -> bool:
        """Freeze the current ring under ``label`` (bounded snapshots).

        Besides auditor findings, SLO breaches call this so the black box
        as of the breach survives even after the ring rolls on.  Returns
        whether a snapshot was actually taken (the per-run/segment cap of
        ``MAX_SNAPSHOTS`` may already be exhausted).
        """
        if len(self.finding_snapshots) >= MAX_SNAPSHOTS:
            return False
        self.finding_snapshots.append({
            "finding": label,
            "kind": kind,
            "events": self.ring_events(),
        })
        return True

    def ring_events(self) -> List[Dict[str, Any]]:
        """Current ring contents, oldest first."""
        with self._mutex:
            return [dict(entry) for entry in self._ring]

    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return the ring contents, oldest first.

        Segment rotation streams the ring out per segment; counters
        (``seen``/``evicted``/``skipped``) keep accumulating across drains.
        """
        with self._mutex:
            ring = [dict(entry) for entry in self._ring]
            self._ring.clear()
            return ring

    def take_snapshots(self) -> List[Dict[str, Any]]:
        """Remove and return frozen snapshots, re-arming the snapshot cap.

        Rotation embeds snapshots in the segment that covers them; clearing
        lets each segment freeze up to ``MAX_SNAPSHOTS`` of its own.
        """
        taken = list(self.finding_snapshots)
        self.finding_snapshots.clear()
        return taken

    def dump(self) -> Dict[str, Any]:
        """JSON-able section for ``Observability.save``."""
        with self._mutex:
            ring = [dict(entry) for entry in self._ring]
        return {
            "capacity": self.capacity,
            "sample_rate": self.sample_rate,
            "seen": self._seq,
            "evicted": self.evicted,
            "skipped": self.skipped,
            "events": ring,
            "finding_snapshots": list(self.finding_snapshots),
        }
