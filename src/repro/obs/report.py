"""CLI: pretty-print saved observability dumps.

Usage::

    python -m repro.obs.report run.trace.json            # metrics + span tree
    python -m repro.obs.report run.trace.json --timeline # ASCII timeline
    python -m repro.obs.report metrics.json --metrics-only

The input is either a full trace document written by
:func:`repro.obs.export.save_trace` / ``Observability.save`` (``spans`` +
``metrics`` keys) or a bare metrics dump as emitted by
``benchmarks/bench_util.emit_metrics_dump``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.obs.export import load_trace, span_timeline, span_tree, text_report


def _as_document(raw: Dict[str, Any]) -> Dict[str, Any]:
    """Accept both full trace documents and bare metrics dumps."""
    if "spans" in raw or "metrics" in raw:
        return raw
    if any(key in raw for key in ("counters", "gauges", "histograms")):
        return {"metrics": raw}
    return raw


def render(document: Dict[str, Any], timeline: bool = False,
           metrics_only: bool = False, trace_id: Optional[str] = None,
           width: int = 72) -> str:
    sections: List[str] = []
    metrics = document.get("metrics")
    if metrics is not None:
        sections.append("# Metrics\n" + text_report(metrics))
    spans = document.get("spans")
    if spans is not None and not metrics_only:
        sections.append("# Spans\n" + span_tree(spans, trace_id=trace_id))
        if timeline:
            sections.append("# Timeline\n"
                            + span_timeline(spans, width=width,
                                            trace_id=trace_id))
    if not sections:
        return "(nothing to report: no metrics or spans in the input)"
    return "\n\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Pretty-print a saved repro observability dump.",
    )
    parser.add_argument("path", help="trace/metrics JSON file "
                                     "(Observability.save or a metrics dump)")
    parser.add_argument("--timeline", action="store_true",
                        help="also render the ASCII span timeline")
    parser.add_argument("--metrics-only", action="store_true",
                        help="print only the metrics section")
    parser.add_argument("--trace", metavar="TRACE_ID", default=None,
                        help="restrict span output to one trace id")
    parser.add_argument("--width", type=int, default=72,
                        help="timeline width in columns (default 72)")
    args = parser.parse_args(argv)
    try:
        raw = load_trace(args.path)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {args.path}: {error}", file=sys.stderr)
        return 1
    if not isinstance(raw, dict):
        print(f"error: {args.path} is not a trace/metrics document "
              f"(expected a JSON object, got {type(raw).__name__})",
              file=sys.stderr)
        return 1
    print(render(_as_document(raw), timeline=args.timeline,
                 metrics_only=args.metrics_only, trace_id=args.trace,
                 width=args.width))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
