"""CLI: pretty-print saved observability dumps.

Usage::

    python -m repro.obs.report run.trace.json            # metrics + span tree
    python -m repro.obs.report run.trace.json --timeline # ASCII timeline
    python -m repro.obs.report metrics.json --metrics-only
    python -m repro.obs.report dumps/*.trace.json        # aggregated table
    python -m repro.obs.report soak-out/                 # soak segment dir

The input is either a full trace document written by
:func:`repro.obs.export.save_trace` / ``Observability.save`` (``spans`` +
``metrics`` keys) or a bare metrics dump as emitted by
``benchmarks/bench_util.emit_metrics_dump``.

Several files (e.g. every ``REPRO_OBS_DUMP`` artifact of a CI run)
aggregate into one metrics table: counters and gauges are summed across
dumps, histograms are merged exactly on count/sum/min/max/mean
(percentiles need the raw samples, which dumps don't carry, so merged rows
omit them); spans are only rendered for single-file input.

Exit codes follow the obs-CLI contract: 0 = rendered, clean; 1 = unusable
input; 2 = rendered, but the dump(s) record invariant-auditor findings
(``audit_findings_total`` > 0) — replay them with ``repro.obs.audit``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro.obs.export import load_trace, span_timeline, span_tree, text_report


def expand_paths(paths: List[str]) -> Optional[List[str]]:
    """Expand soak segment *directories* into their segments, in order.

    A directory argument stands for every ``segment-*.trace.json`` inside
    it (see :mod:`repro.obs.soak.segments`), so ``repro.obs.report
    soak-out/`` aggregates a whole soak run.  Returns ``None`` (after
    printing to stderr) when a directory holds no segments.
    """
    from repro.obs.soak.segments import segment_paths

    expanded: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            segments = segment_paths(path)
            if not segments:
                print(f"error: {path} is a directory without "
                      f"segment-*.trace.json files", file=sys.stderr)
                return None
            expanded.extend(segments)
        else:
            expanded.append(path)
    return expanded


def _as_document(raw: Dict[str, Any]) -> Dict[str, Any]:
    """Accept both full trace documents and bare metrics dumps."""
    if "spans" in raw or "metrics" in raw:
        return raw
    if any(key in raw for key in ("counters", "gauges", "histograms")):
        return {"metrics": raw}
    return raw


def aggregate_documents(documents: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge the metrics of several dump documents into one.

    Counters and gauges with the same name and labels are summed (across
    runs, both are totals); histograms are merged exactly on count / sum /
    min / max with the mean recomputed — percentiles are dropped because
    they cannot be derived from summaries.  Returns a ``{"metrics": ...}``
    document renderable by :func:`render`.
    """
    def key_of(row: Dict[str, Any]):
        return (row["name"], tuple(sorted(row.get("labels", {}).items())))

    sums: Dict[str, Dict[Any, Dict[str, Any]]] = {"counters": {}, "gauges": {}}
    merged_hists: Dict[Any, Dict[str, Any]] = {}
    for document in documents:
        metrics = document.get("metrics", document)
        for section in ("counters", "gauges"):
            for row in metrics.get(section, []):
                slot = sums[section].setdefault(key_of(row), {
                    "name": row["name"],
                    "labels": dict(row.get("labels", {})), "value": 0.0,
                })
                slot["value"] += row.get("value", 0.0)
        for row in metrics.get("histograms", []):
            slot = merged_hists.get(key_of(row))
            if slot is None:
                merged_hists[key_of(row)] = {
                    "name": row["name"],
                    "labels": dict(row.get("labels", {})),
                    "count": row.get("count", 0),
                    "sum": row.get("sum", 0.0),
                    "min": row.get("min"),
                    "max": row.get("max"),
                    "merged_from": 1,
                }
                continue
            slot["count"] += row.get("count", 0)
            slot["sum"] += row.get("sum", 0.0)
            for bound, pick in (("min", min), ("max", max)):
                value = row.get(bound)
                if value is not None:
                    slot[bound] = (value if slot[bound] is None
                                   else pick(slot[bound], value))
            slot["merged_from"] += 1
    histograms = []
    for _key, slot in sorted(merged_hists.items()):
        slot["mean"] = (slot["sum"] / slot["count"]) if slot["count"] else None
        histograms.append(slot)
    return {"metrics": {
        "counters": [sums["counters"][k] for k in sorted(sums["counters"])],
        "gauges": [sums["gauges"][k] for k in sorted(sums["gauges"])],
        "histograms": histograms,
    }}


def render(document: Dict[str, Any], timeline: bool = False,
           metrics_only: bool = False, trace_id: Optional[str] = None,
           width: int = 72) -> str:
    sections: List[str] = []
    metrics = document.get("metrics")
    if metrics is not None:
        sections.append("# Metrics\n" + text_report(metrics))
    spans = document.get("spans")
    if spans is not None and not metrics_only:
        sections.append("# Spans\n" + span_tree(spans, trace_id=trace_id))
        if timeline:
            sections.append("# Timeline\n"
                            + span_timeline(spans, width=width,
                                            trace_id=trace_id))
    if not sections:
        return "(nothing to report: no metrics or spans in the input)"
    return "\n\n".join(sections)


def embedded_findings_total(document: Dict[str, Any]) -> float:
    """Sum of ``audit_findings_total`` counters recorded in a document.

    A run whose hub auditor found violations carries them in its metrics;
    the report CLI surfaces that as exit code 2 so a green-looking metrics
    table can't hide a red run.
    """
    metrics = document.get("metrics", document)
    if not isinstance(metrics, dict):
        return 0.0
    return sum(
        row.get("value", 0.0)
        for row in metrics.get("counters", [])
        if isinstance(row, dict) and row.get("name") == "audit_findings_total"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Pretty-print a saved repro observability dump.",
    )
    parser.add_argument("paths", nargs="+", metavar="path",
                        help="trace/metrics JSON file(s) (Observability.save "
                             "or metrics dumps) or a soak segment directory; "
                             "several inputs aggregate into one table")
    parser.add_argument("--timeline", action="store_true",
                        help="also render the ASCII span timeline")
    parser.add_argument("--metrics-only", action="store_true",
                        help="print only the metrics section")
    parser.add_argument("--trace", metavar="TRACE_ID", default=None,
                        help="restrict span output to one trace id")
    parser.add_argument("--width", type=int, default=72,
                        help="timeline width in columns (default 72)")
    args = parser.parse_args(argv)
    paths = expand_paths(args.paths)
    if paths is None:
        return 1
    documents: List[Dict[str, Any]] = []
    for path in paths:
        try:
            raw = load_trace(path)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read {path}: {error}", file=sys.stderr)
            return 1
        if not isinstance(raw, dict):
            print(f"error: {path} is not a trace/metrics document "
                  f"(expected a JSON object, got {type(raw).__name__})",
                  file=sys.stderr)
            return 1
        documents.append(_as_document(raw))
    if len(documents) == 1:
        document = documents[0]
    else:
        print(f"(aggregating {len(documents)} dumps; spans omitted)\n")
        document = aggregate_documents(documents)
    print(render(document, timeline=args.timeline,
                 metrics_only=args.metrics_only, trace_id=args.trace,
                 width=args.width))
    findings = embedded_findings_total(document)
    if findings:
        print(f"\nWARNING: {findings:g} invariant-auditor finding(s) "
              f"recorded in this run — replay with "
              f"`python -m repro.obs.audit <dump>`", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
