"""Postmortem records: the abort-reason taxonomy and per-action verdicts.

Every finished atomic action gets one :class:`Postmortem`; aborted ones
carry a *reason* from the taxonomy below plus, for lock-induced deaths, a
resolved :class:`BlockerLink` chain naming who stood in the way (object,
colour, holder, hold time).  Records are plain frozen dataclasses with a
``to_dict`` so they travel in ``Observability.save`` dumps and feed the
``python -m repro.obs.why`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

#: the action was chosen as a deadlock victim (edge-chasing probe or
#: wait-for-graph cycle) and its lock wait was cancelled.
DEADLOCK_VICTIM = "deadlock-victim"
#: a lock wait timed out or was refused while another action held (or was
#: queued ahead for) the object — plain contention, no cycle.
LOCK_CONFLICT = "lock-conflict"
#: a node crash / restart / partition made a participant unreachable or
#: wiped its volatile write set (epoch restart, presumed-abort straggler).
CRASH_PARTITION = "crash-partition"
#: a message was lost or timed out with every involved node alive — the
#: signature of injected network faults rather than process death.
INJECTED_FAULT = "injected-fault"
#: a prepare round ran and some participant answered rollback.
VOTE_ROLLBACK = "vote-rollback"
#: a commit fast path (one-phase, piggybacked decision, read-only vote)
#: had to downgrade and the classic finish then aborted.
FAST_PATH_DOWNGRADE = "fast-path-downgrade"
#: collateral damage: the abort was inherited from a parent or from an
#: earlier failing colour of the same action, or arrived from elsewhere.
CASCADE = "cascade"
#: the application body raised; the runtime aborted on its behalf.
APP_ERROR = "app-error"
#: the application called ``abort()`` with no observed failure first.
EXPLICIT_ABORT = "explicit-abort"
#: attribution fallback — should be absent from any healthy dump.
UNKNOWN = "unknown"

ALL_REASONS = (
    DEADLOCK_VICTIM,
    LOCK_CONFLICT,
    CRASH_PARTITION,
    INJECTED_FAULT,
    VOTE_ROLLBACK,
    FAST_PATH_DOWNGRADE,
    CASCADE,
    APP_ERROR,
    EXPLICIT_ABORT,
    UNKNOWN,
)


@dataclass(frozen=True)
class BlockerLink:
    """One hop in a blocker chain: who was in the way, and how."""

    holder: str                       # uid of the action holding / queued
    object: str
    node: str = ""
    mode: str = ""
    colour: str = ""
    #: "holds" = held the lock when the victim died; "released" = held it
    #: during the wait but let go before the refusal; "queued-ahead" = an
    #: earlier waiter in the FIFO queue; "waits" = transitive hop (the
    #: previous link's holder is itself blocked on this one).
    status: str = "holds"
    since: float = 0.0
    held_for: float = 0.0
    depth: int = 0

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"holder": self.holder, "object": self.object,
                               "status": self.status}
        for key in ("node", "mode", "colour"):
            value = getattr(self, key)
            if value:
                out[key] = value
        if self.since:
            out["since"] = self.since
        if self.held_for:
            out["held_for"] = self.held_for
        if self.depth:
            out["depth"] = self.depth
        return out

    def __str__(self) -> str:
        bits = [f"{self.holder} {self.status} {self.object}"]
        if self.mode:
            bits.append(f"mode={self.mode}")
        if self.colour:
            bits.append(f"colour={self.colour}")
        if self.held_for:
            bits.append(f"held_for={self.held_for:g}")
        return ("  " * self.depth) + " ".join(bits)


@dataclass(frozen=True)
class Postmortem:
    """The verdict on one finished atomic action."""

    action: str
    name: str = ""
    node: str = ""
    colours: Tuple[str, ...] = field(default_factory=tuple)
    outcome: str = ""                 # "committed" | "aborted"
    reason: str = ""                  # taxonomy constant; "" for commits
    detail: str = ""
    begin: float = 0.0
    end: float = 0.0
    blockers: Tuple[BlockerLink, ...] = field(default_factory=tuple)
    txns: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def duration(self) -> float:
        return self.end - self.begin

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "action": self.action, "outcome": self.outcome,
            "begin": self.begin, "end": self.end,
        }
        for key in ("name", "node", "reason", "detail"):
            value = getattr(self, key)
            if value:
                out[key] = value
        if self.colours:
            out["colours"] = list(self.colours)
        if self.blockers:
            out["blockers"] = [link.to_dict() for link in self.blockers]
        if self.txns:
            out["txns"] = list(self.txns)
        return out

    def __str__(self) -> str:
        head = f"{self.action} ({self.name}) {self.outcome}"
        if self.reason:
            head += f" [{self.reason}]"
        if self.detail:
            head += f": {self.detail}"
        return head
