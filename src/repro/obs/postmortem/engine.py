"""The postmortem engine: causal abort attribution over the obs event bus.

A :class:`PostmortemEngine` is a pure bus subscriber (same contract as the
:class:`~repro.obs.audit.auditor.InvariantAuditor`): it watches the action
lifecycle, lock traffic, 2PC rounds and fault-injection events, and when an
action ends it issues a :class:`~repro.obs.postmortem.records.Postmortem`
— committed actions get a plain record, aborted ones get a *reason* from
the taxonomy plus a resolved blocker chain for lock-induced deaths.

Attribution happens online, at the ``action.end`` event, against the lock
and transaction state the engine has reconstructed so far; the same code
runs offline over a saved dump (``python -m repro.obs.why``) because both
paths consume the identical event stream.  Aborted actions additionally:

- feed ``abort_reason_total{reason=,colour=}`` — incremented once per
  colour of the action, so the totals cross-check exactly against the
  bridge's per-colour ``actions_aborted_total`` counters;
- freeze the attached flight recorder's ring (bounded, like the
  auditor's finding snapshots) so the black box around a death survives.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from repro.obs.bus import ObsEvent
from repro.obs.postmortem import attribution
from repro.obs.postmortem.records import BlockerLink, Postmortem

#: at most this many abort ring snapshots are frozen per run
MAX_ABORT_SNAPSHOTS = 4

#: postmortem records kept when the engine's deque overflows
DEFAULT_MAX_RECORDS = 10_000


@dataclass
class _ActionInfo:
    """Everything observed about one action while it is alive."""

    uid: str
    name: str = ""
    node: str = ""
    parent: str = ""
    colours: Tuple[str, ...] = field(default_factory=tuple)
    begin: float = 0.0
    #: ``action.failure`` events, in arrival order
    failures: List[Dict[str, Any]] = field(default_factory=list)
    #: ``lock.refused`` events with their resolved blocker chains
    refusals: List[Dict[str, Any]] = field(default_factory=list)
    txns: List[str] = field(default_factory=list)


@dataclass
class _TxnInfo:
    """One 2PC round as seen from the bus."""

    txn: str
    action: str = ""
    colour: str = ""
    participants: Tuple[str, ...] = field(default_factory=tuple)
    begin: float = 0.0
    votes: List[Dict[str, Any]] = field(default_factory=list)
    decision: str = ""
    cause: str = ""
    downgrades: List[Dict[str, Any]] = field(default_factory=list)


def _split(value: str) -> Tuple[str, ...]:
    return tuple(part for part in str(value or "").split(",") if part)


class PostmortemEngine:
    """Bus subscriber building per-action postmortems with causal blame."""

    _HANDLERS = {
        "action.begin": "_on_action_begin",
        "action.end": "_on_action_end",
        "action.failure": "_on_action_failure",
        "lock.granted": "_on_lock_granted",
        "lock.released": "_on_lock_released",
        "lock.inherited": "_on_lock_inherited",
        "lock.blocked": "_on_lock_blocked",
        "lock.refused": "_on_lock_refused",
        "twopc.begin": "_on_twopc_begin",
        "twopc.vote": "_on_twopc_vote",
        "twopc.decision": "_on_twopc_decision",
        "twopc.downgrade": "_on_twopc_downgrade",
        "node.crash": "_on_node_crash",
        "node.restart": "_on_node_restart",
    }

    #: chain resolution bounds: transitive depth and total links
    MAX_CHAIN_DEPTH = 4
    MAX_CHAIN_LINKS = 8

    def __init__(self, metrics=None, flight=None,
                 max_records: int = DEFAULT_MAX_RECORDS):
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self._mutex = threading.Lock()
        self.metrics = metrics
        self.flight = flight
        self.records: Deque[Postmortem] = deque(maxlen=max_records)
        self.abort_snapshots: List[Dict[str, Any]] = []
        #: action-level totals per reason (one per aborted action)
        self.reason_counts: Dict[str, int] = {}
        self.seen = 0
        self._hub = None
        # -- reconstructed world state --------------------------------------
        self._actions: Dict[str, _ActionInfo] = {}
        self._txns: Dict[str, _TxnInfo] = {}
        #: (node, object) -> owner -> held records [{mode, colour, since}]
        self._holds: Dict[Tuple[str, str], Dict[str, List[Dict[str, Any]]]] = {}
        #: (node, object, owner) -> most recently released record
        self._last_hold: Dict[Tuple[str, str, str], Dict[str, Any]] = {}
        #: owner -> its current lock wait (latest ``lock.blocked``)
        self._blocked: Dict[str, Dict[str, Any]] = {}
        #: node -> ticks at which it crashed / restarted
        self._crashed: Dict[str, List[float]] = {}
        self._restarted: Dict[str, List[float]] = {}

    # -- wiring ---------------------------------------------------------------

    def attach(self, hub) -> "PostmortemEngine":
        """Subscribe to ``hub``'s event bus and become ``hub.postmortem``."""
        if self._hub is not None:
            raise RuntimeError("postmortem engine already attached")
        self._hub = hub
        if self.metrics is None:
            self.metrics = hub.metrics
        if self.flight is None:
            self.flight = getattr(hub, "flight", None)
        hub.bus.subscribe(self.consume)
        hub.postmortem = self
        return self

    def detach(self) -> None:
        if self._hub is None:
            return
        self._hub.bus.unsubscribe(self.consume)
        if getattr(self._hub, "postmortem", None) is self:
            self._hub.postmortem = None
        self._hub = None

    @classmethod
    def replay(cls, events: Iterable[ObsEvent],
               max_records: int = DEFAULT_MAX_RECORDS) -> "PostmortemEngine":
        """Run a saved event stream through a fresh engine (offline mode)."""
        engine = cls(max_records=max_records)
        for event in events:
            engine.consume(event)
        return engine

    # -- intake ---------------------------------------------------------------

    def consume(self, event: ObsEvent) -> None:
        handler = self._HANDLERS.get(event.kind)
        if handler is None:
            return
        with self._mutex:
            self.seen += 1
            getattr(self, handler)(event)

    # -- action lifecycle ------------------------------------------------------

    def _info(self, action: str) -> _ActionInfo:
        info = self._actions.get(action)
        if info is None:
            info = self._actions[action] = _ActionInfo(uid=action)
        return info

    def _on_action_begin(self, event: ObsEvent) -> None:
        action = str(event.label("action", ""))
        info = self._info(action)
        info.name = str(event.label("name", ""))
        info.node = str(event.label("node", ""))
        info.parent = str(event.label("parent", ""))
        info.colours = _split(event.label("colours", ""))
        info.begin = event.tick

    def _on_action_failure(self, event: ObsEvent) -> None:
        info = self._info(str(event.label("action", "")))
        info.failures.append({
            "tick": event.tick,
            "cause": str(event.label("cause", "")),
            "op": str(event.label("op", "")),
            "error": str(event.label("error", "")),
            "detail": str(event.label("detail", "")),
            "dst": str(event.label("dst", "")),
            "object": str(event.label("object", "")),
            "colour": str(event.label("colour", "")),
        })

    def _on_action_end(self, event: ObsEvent) -> None:
        action = str(event.label("action", ""))
        info = self._actions.pop(action, None) or _ActionInfo(uid=action)
        colours = _split(event.label("colours", "")) or info.colours
        outcome = str(event.label("outcome", ""))
        record = Postmortem(
            action=action,
            name=str(event.label("name", "")) or info.name,
            node=str(event.label("node", "")) or info.node,
            colours=colours,
            outcome=outcome,
            begin=info.begin,
            end=event.tick,
            txns=tuple(info.txns),
        )
        if outcome == "aborted":
            reason, detail, blockers = attribution.attribute(info, self)
            record = Postmortem(
                action=record.action, name=record.name, node=record.node,
                colours=record.colours, outcome=record.outcome,
                reason=reason, detail=detail,
                begin=record.begin, end=record.end,
                blockers=blockers, txns=record.txns,
            )
            self.reason_counts[reason] = self.reason_counts.get(reason, 0) + 1
            if self.metrics is not None:
                # one increment per colour: exact parity with the bridge's
                # actions_aborted_total{colour=} accounting
                for colour in colours:
                    self.metrics.counter("abort_reason_total",
                                         reason=reason, colour=colour).inc()
            self._freeze_ring(record)
        self._blocked.pop(action, None)
        self.records.append(record)

    def _freeze_ring(self, record: Postmortem) -> None:
        if self.flight is None:
            return
        if len(self.abort_snapshots) >= MAX_ABORT_SNAPSHOTS:
            return
        self.abort_snapshots.append({
            "action": record.action,
            "reason": record.reason,
            "detail": record.detail,
            "tick": record.end,
            "events": self.flight.ring_events(),
        })

    # -- lock state ------------------------------------------------------------

    def _on_lock_granted(self, event: ObsEvent) -> None:
        node = str(event.label("node", ""))
        owner = str(event.label("owner", ""))
        obj = str(event.label("object", ""))
        self._holds.setdefault((node, obj), {}).setdefault(owner, []).append({
            "mode": str(event.label("mode", "")),
            "colour": str(event.label("colour", "")),
            "since": event.tick,
        })
        blocked = self._blocked.get(owner)
        if blocked is not None and blocked["object"] == obj:
            del self._blocked[owner]

    def _drop_hold(self, node: str, obj: str, owner: str, mode: str,
                   colour: str, tick: float) -> Optional[Dict[str, Any]]:
        holders = self._holds.get((node, obj))
        if holders is None:
            return None
        records = holders.get(owner)
        if not records:
            return None
        match = next((r for r in records
                      if r["mode"] == mode and r["colour"] == colour),
                     records[0])
        records.remove(match)
        if not records:
            del holders[owner]
        if not holders:
            del self._holds[(node, obj)]
        return match

    def _on_lock_released(self, event: ObsEvent) -> None:
        node = str(event.label("node", ""))
        owner = str(event.label("owner", ""))
        obj = str(event.label("object", ""))
        match = self._drop_hold(node, obj, owner,
                                str(event.label("mode", "")),
                                str(event.label("colour", "")), event.tick)
        if match is not None:
            self._last_hold[(node, obj, owner)] = {
                "mode": match["mode"], "colour": match["colour"],
                "since": match["since"], "until": event.tick,
                "reason": str(event.label("reason", "")),
            }

    def _on_lock_inherited(self, event: ObsEvent) -> None:
        node = str(event.label("node", ""))
        owner = str(event.label("owner", ""))
        heir = str(event.label("to", ""))
        obj = str(event.label("object", ""))
        mode = str(event.label("mode", ""))
        colour = str(event.label("colour", ""))
        match = self._drop_hold(node, obj, owner, mode, colour, event.tick)
        since = match["since"] if match is not None else event.tick
        self._holds.setdefault((node, obj), {}).setdefault(heir, []).append({
            "mode": mode, "colour": colour, "since": since,
        })

    def _on_lock_blocked(self, event: ObsEvent) -> None:
        owner = str(event.label("owner", ""))
        self._blocked[owner] = {
            "object": str(event.label("object", "")),
            "node": str(event.label("node", "")),
            "mode": str(event.label("mode", "")),
            "colour": str(event.label("colour", "")),
            "blockers": list(_split(event.label("blockers", ""))),
            "since": event.tick,
        }

    def _on_lock_refused(self, event: ObsEvent) -> None:
        owner = str(event.label("owner", ""))
        obj = str(event.label("object", ""))
        node = str(event.label("node", ""))
        chain = self._blocker_chain(owner, node, obj, event.tick)
        blocked = self._blocked.get(owner)
        if blocked is not None and blocked["object"] == obj:
            del self._blocked[owner]
        self._info(owner).refusals.append({
            "tick": event.tick,
            "object": obj,
            "node": node,
            "mode": str(event.label("mode", "")),
            "colour": str(event.label("colour", "")),
            "reason": str(event.label("reason", "")),
            "error": str(event.label("error", "")),
            "blockers": chain,
        })

    def _blocker_chain(self, victim: str, node: str, obj: str,
                       tick: float) -> Tuple[BlockerLink, ...]:
        """Who stands (or stood) between ``victim`` and its lock, resolved
        against the current lock world; transitively chases holders that
        are themselves blocked, bounded in depth and length."""
        links: List[BlockerLink] = []
        seen = {victim}
        queue: List[Tuple[str, str, str, int]] = [(victim, node, obj, 0)]
        while queue and len(links) < self.MAX_CHAIN_LINKS:
            who, at_node, at_obj, depth = queue.pop(0)
            if depth > self.MAX_CHAIN_DEPTH:
                continue
            for link in self._links_for(who, at_node, at_obj, tick, depth):
                if link.holder in seen:
                    continue
                seen.add(link.holder)
                links.append(link)
                if len(links) >= self.MAX_CHAIN_LINKS:
                    break
                waiting = self._blocked.get(link.holder)
                if waiting is not None:
                    queue.append((link.holder, waiting["node"],
                                  waiting["object"], depth + 1))
        return tuple(links)

    def _links_for(self, who: str, node: str, obj: str, tick: float,
                   depth: int) -> List[BlockerLink]:
        found: List[BlockerLink] = []
        for holder, records in sorted(
                self._holds.get((node, obj), {}).items()):
            if holder == who:
                continue
            for record in records:
                found.append(BlockerLink(
                    holder=holder, object=obj, node=node,
                    mode=record["mode"], colour=record["colour"],
                    status="holds", since=record["since"],
                    held_for=tick - record["since"], depth=depth,
                ))
        if found:
            return found
        # nobody holds it *now*: blame whoever the victim was queued
        # behind when the wait began — released holders first, then
        # earlier waiters in the FIFO queue
        blocked = self._blocked.get(who)
        names = (blocked["blockers"]
                 if blocked is not None and blocked["object"] == obj else [])
        for holder in names:
            if holder == who:
                continue
            last = self._last_hold.get((node, obj, holder))
            if last is not None:
                found.append(BlockerLink(
                    holder=holder, object=obj, node=node,
                    mode=last["mode"], colour=last["colour"],
                    status="released", since=last["since"],
                    held_for=last["until"] - last["since"], depth=depth,
                ))
            else:
                found.append(BlockerLink(holder=holder, object=obj,
                                         node=node, status="queued-ahead",
                                         depth=depth))
        return found

    # -- 2PC rounds ------------------------------------------------------------

    def _txn(self, txn: str) -> _TxnInfo:
        info = self._txns.get(txn)
        if info is None:
            info = self._txns[txn] = _TxnInfo(txn=txn)
        return info

    def _on_twopc_begin(self, event: ObsEvent) -> None:
        txn = str(event.label("txn", ""))
        info = self._txn(txn)
        info.action = str(event.label("action", ""))
        info.colour = str(event.label("colour", ""))
        info.participants = _split(event.label("participants", ""))
        info.begin = event.tick
        if info.action:
            self._info(info.action).txns.append(txn)

    def _on_twopc_vote(self, event: ObsEvent) -> None:
        self._txn(str(event.label("txn", ""))).votes.append({
            "node": str(event.label("node", "")),
            "vote": str(event.label("vote", "")),
            "reason": str(event.label("reason", "")),
            "tick": event.tick,
        })

    def _on_twopc_decision(self, event: ObsEvent) -> None:
        info = self._txn(str(event.label("txn", "")))
        decision = str(event.label("decision", ""))
        if not info.decision or info.decision == decision:
            info.decision = decision
            if not info.cause:
                info.cause = str(event.label("cause", ""))

    def _on_twopc_downgrade(self, event: ObsEvent) -> None:
        self._txn(str(event.label("txn", ""))).downgrades.append({
            "reason": str(event.label("reason", "")),
            "resolution": str(event.label("resolution", "")),
            "dst": str(event.label("dst", "")),
            "tick": event.tick,
        })

    # -- fault injection --------------------------------------------------------

    def _on_node_crash(self, event: ObsEvent) -> None:
        node = str(event.label("node", ""))
        self._crashed.setdefault(node, []).append(event.tick)
        self._wipe_node(node)

    def _on_node_restart(self, event: ObsEvent) -> None:
        node = str(event.label("node", ""))
        self._restarted.setdefault(node, []).append(event.tick)
        # a restart implies volatile lock state was lost even when the
        # crash itself went unannounced (direct node.crash() in tests)
        self._wipe_node(node)

    def _wipe_node(self, node: str) -> None:
        for key in [k for k in self._holds if k[0] == node]:
            del self._holds[key]

    def node_faulted(self, node: str, before: float) -> bool:
        """Did ``node`` crash or restart at or before ``before``?

        The signal that separates :data:`~repro.obs.postmortem.records
        .CRASH_PARTITION` (process death) from
        :data:`~repro.obs.postmortem.records.INJECTED_FAULT` (message
        loss with everyone alive).
        """
        for tick in self._crashed.get(node, ()):
            if tick <= before:
                return True
        for tick in self._restarted.get(node, ()):
            if tick <= before:
                return True
        return False

    def txn_info(self, txn: str) -> Optional[_TxnInfo]:
        return self._txns.get(txn)

    # -- queries / export -------------------------------------------------------

    def record_for(self, query: str) -> Optional[Postmortem]:
        """Find a record by action uid, txn id, or action name."""
        for record in reversed(self.records):
            if (record.action == query or query in record.txns
                    or record.name == query):
                return record
        return None

    def aborted(self) -> List[Postmortem]:
        return [r for r in self.records if r.outcome == "aborted"]

    def dump(self) -> Dict[str, Any]:
        """JSON-able section for ``Observability.save``."""
        with self._mutex:
            return {
                "records": [r.to_dict() for r in self.records],
                "reasons": dict(sorted(self.reason_counts.items())),
                "abort_snapshots": list(self.abort_snapshots),
                "seen": self.seen,
            }
