"""CLI: why did a transaction abort / what bounded a commit.

Usage::

    python -m repro.obs.why dump.json                 # summary
    python -m repro.obs.why dump.json txn:n0:3:1:2    # one postmortem
    python -m repro.obs.why dump.json --aborts        # full attribution
    python -m repro.obs.why dump.json --slowest 5     # commit forensics
    python -m repro.obs.why dump.json --aborts --json

(``repro.obs.why`` and ``repro.obs.postmortem`` are the same program.)

The input is a trace document written by ``Observability.save``; aborts
are re-attributed by replaying its retained ``events`` through the
:class:`~repro.obs.postmortem.engine.PostmortemEngine`, and commit
critical paths come from its ``spans``.  Exit codes: 0 = clean, 1 =
unusable input or no such transaction, 2 = attribution gaps (an abort
classified ``unknown``, or totals that disagree with the dump's own
per-colour abort counters).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.bus import ObsEvent
from repro.obs.postmortem import critical, render
from repro.obs.postmortem.engine import PostmortemEngine


def _load(path: str):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return None
    if not isinstance(raw, dict):
        print(f"error: {path}: expected a JSON object "
              f"(got {type(raw).__name__})", file=sys.stderr)
        return None
    if not isinstance(raw.get("events"), list):
        print(f"error: {path}: no \"events\" list — was this dump "
              f"written by Observability.save()?", file=sys.stderr)
        return None
    return raw


def _replay(raw: dict) -> PostmortemEngine:
    def events():
        for entry in raw["events"]:
            if not isinstance(entry, dict):
                continue
            labels = entry.get("labels")
            yield ObsEvent(
                tick=float(entry.get("tick", 0.0)),
                kind=str(entry.get("kind", "")),
                labels=dict(labels) if isinstance(labels, dict) else {},
            )
    return PostmortemEngine.replay(events())


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.why",
        description="Causal postmortems over a saved obs dump: why did a "
                    "transaction abort, what bounded a commit.",
    )
    parser.add_argument("path", help="trace JSON written by Observability.save")
    parser.add_argument("query", nargs="?", default=None,
                        help="a txn id, action uid or action name to explain")
    parser.add_argument("--aborts", action="store_true",
                        help="attribute every abort (exit 2 on gaps)")
    parser.add_argument("--slowest", type=int, metavar="N", default=None,
                        help="critical paths of the N slowest commits")
    parser.add_argument("--json", action="store_true",
                        help="print the result as JSON")
    args = parser.parse_args(argv)
    raw = _load(args.path)
    if raw is None:
        return 1
    engine = _replay(raw)
    spans = raw.get("spans") if isinstance(raw.get("spans"), list) else []
    metrics = raw.get("metrics") if isinstance(raw.get("metrics"), dict) \
        else {}

    if args.query is not None:
        record = engine.record_for(args.query)
        if record is None:
            print(f"error: no finished action or transaction matches "
                  f"{args.query!r} in {args.path}", file=sys.stderr)
            return 1
        paths = [entry for entry in critical.slowest_commits(spans, count=1000)
                 if entry["action"] == record.action]
        if args.json:
            doc = record.to_dict()
            if paths:
                doc["critical_path"] = paths[0]
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            for line in render.render_record(record):
                print(line)
            for entry in paths:
                for line in critical.describe_path(entry):
                    print(line)
        return 0

    if args.slowest is not None:
        entries = critical.slowest_commits(spans, count=args.slowest)
        if args.json:
            print(json.dumps(entries, indent=2, sort_keys=True))
        elif not entries:
            print("no finished commit spans in the dump")
        else:
            for entry in entries:
                for line in critical.describe_path(entry):
                    print(line)
        return 0

    records = list(engine.records)
    if args.aborts:
        lines, failures = render.abort_report(records, metrics_doc=metrics)
        if args.json:
            print(json.dumps({
                "records": [r.to_dict() for r in records
                            if r.outcome == "aborted"],
                "reasons": render.reason_histogram(records),
                "gaps": failures,
            }, indent=2, sort_keys=True))
        else:
            for line in lines:
                print(line)
        return 2 if failures else 0

    # no flags: a one-screen summary
    histogram = render.reason_histogram(records)
    aborted = sum(histogram.values())
    print(f"{len(records)} finished action(s), {aborted} aborted")
    for reason, count in sorted(histogram.items(),
                                key=lambda kv: (-kv[1], kv[0])):
        print(f"  {reason}: {count}")
    for entry in critical.slowest_commits(spans, count=3):
        for line in critical.describe_path(entry):
            print(line)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
