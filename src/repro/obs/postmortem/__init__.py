"""Transaction postmortems: causal abort attribution and commit forensics.

The fourth observability layer (after metrics/traces, the invariant
auditor, and the performance observatory) answers *why*:

- :class:`PostmortemEngine` — a bus subscriber that reconstructs, per
  finished action, an abort reason from the taxonomy in
  :mod:`~repro.obs.postmortem.records` (deadlock victim, lock conflict,
  crash/partition, injected fault, vote rollback, fast-path downgrade,
  cascade, app error, explicit abort) plus a resolved blocker chain —
  which action/colour held the awaited lock, transitively, with hold
  times.  Attach live via ``cluster.attach_postmortem()``.
- :mod:`~repro.obs.postmortem.critical` — commit critical paths over the
  saved span tree: the gating chain from the ``commit`` span down to the
  participant that bounded the slowest round.
- ``python -m repro.obs.why dump.json [--aborts | --slowest N | <txn>]``
  — the offline CLI over ``Observability.save`` dumps; exit codes match
  the other obs CLIs (0 clean, 1 unusable input, 2 attribution gaps).
"""

from repro.obs.postmortem.engine import PostmortemEngine
from repro.obs.postmortem.records import (
    ALL_REASONS,
    APP_ERROR,
    CASCADE,
    CRASH_PARTITION,
    DEADLOCK_VICTIM,
    EXPLICIT_ABORT,
    FAST_PATH_DOWNGRADE,
    INJECTED_FAULT,
    LOCK_CONFLICT,
    UNKNOWN,
    VOTE_ROLLBACK,
    BlockerLink,
    Postmortem,
)

__all__ = [
    "ALL_REASONS",
    "APP_ERROR",
    "BlockerLink",
    "CASCADE",
    "CRASH_PARTITION",
    "DEADLOCK_VICTIM",
    "EXPLICIT_ABORT",
    "FAST_PATH_DOWNGRADE",
    "INJECTED_FAULT",
    "LOCK_CONFLICT",
    "Postmortem",
    "PostmortemEngine",
    "UNKNOWN",
    "VOTE_ROLLBACK",
]
