"""Abort attribution: from observed failures to one taxonomy reason.

The classifier works from the *first* failure signal an action saw — in
this codebase an action aborts on its first failure, so the proximate
cause is the earliest ``action.failure`` / ``lock.refused`` on record —
and refines it against the reconstructed world: blocker chains for lock
deaths, vote reasons and downgrade history for 2PC deaths, and node
crash/restart knowledge to tell a dead process (``crash-partition``)
from a dropped message with everyone alive (``injected-fault``).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.obs.postmortem.records import (
    APP_ERROR,
    BlockerLink,
    CASCADE,
    CRASH_PARTITION,
    DEADLOCK_VICTIM,
    EXPLICIT_ABORT,
    FAST_PATH_DOWNGRADE,
    INJECTED_FAULT,
    LOCK_CONFLICT,
    UNKNOWN,
    VOTE_ROLLBACK,
)

#: lock refusal error classes that mean "another action was in the way"
_CONFLICT_ERRORS = ("LockTimeout", "LockRefused")

#: vote-refusal reasons that prove a participant restarted mid-protocol
_CRASH_VOTE_REASONS = ("epoch-restart", "write-set-lost")

Verdict = Tuple[str, str, Tuple[BlockerLink, ...]]


def attribute(info, engine) -> Verdict:
    """Classify one aborted action (``info`` is the engine's action state)."""
    failure = info.failures[0] if info.failures else None
    if failure is not None:
        return _from_failure(failure, info, engine)
    # no client-side failure record: the local runtime's path, or a death
    # the client never saw — lock refusals speak for themselves
    refusal = _refusal(info, errors=("DeadlockDetected",))
    if refusal is not None:
        return (DEADLOCK_VICTIM, _refusal_detail(refusal),
                refusal["blockers"])
    refusal = _refusal(info, errors=_CONFLICT_ERRORS)
    if refusal is not None:
        return LOCK_CONFLICT, _refusal_detail(refusal), refusal["blockers"]
    return EXPLICIT_ABORT, "no failure observed before the abort", ()


def _from_failure(failure, info, engine) -> Verdict:
    cause = failure["cause"]
    if cause == "deadlock-victim":
        refusal = _refusal(info, errors=("DeadlockDetected",),
                           object_uid=failure["object"])
        if refusal is not None:
            return (DEADLOCK_VICTIM, _refusal_detail(refusal),
                    refusal["blockers"])
        return DEADLOCK_VICTIM, failure["detail"], ()
    if cause == "lock-conflict":
        refusal = _refusal(info, errors=_CONFLICT_ERRORS,
                           object_uid=failure["object"])
        if refusal is not None:
            return LOCK_CONFLICT, _refusal_detail(refusal), refusal["blockers"]
        return LOCK_CONFLICT, failure["detail"], ()
    if cause == "server-restart":
        return (CRASH_PARTITION,
                f"server {failure['dst']} restarted under the action: "
                f"{failure['detail']}", ())
    if cause == "node-down":
        return (CRASH_PARTITION,
                f"node {failure['dst']} was down during {failure['op']}", ())
    if cause == "rpc-timeout":
        if failure["dst"] and engine.node_faulted(failure["dst"],
                                                  failure["tick"]):
            return (CRASH_PARTITION,
                    f"{failure['op']} to crashed node {failure['dst']} "
                    f"timed out", ())
        return (INJECTED_FAULT,
                f"{failure['op']} to {failure['dst'] or 'peer'} timed out "
                f"with every involved node alive", ())
    if cause == "commit-failed":
        return _from_commit_failure(failure, info, engine)
    if cause == "parent-settled":
        return CASCADE, f"parent {failure['detail']} settled first", ()
    if cause == "action-aborted":
        # aborted from elsewhere; the original cause may be on record as
        # an earlier lock refusal at some server
        refusal = _refusal(info, errors=("DeadlockDetected",))
        if refusal is not None:
            return (DEADLOCK_VICTIM, _refusal_detail(refusal),
                    refusal["blockers"])
        refusal = _refusal(info, errors=_CONFLICT_ERRORS)
        if refusal is not None:
            return LOCK_CONFLICT, _refusal_detail(refusal), refusal["blockers"]
        return CASCADE, f"aborted elsewhere: {failure['detail']}", ()
    if cause == "app-error":
        return (APP_ERROR,
                f"{failure['op']} raised {failure['error']}: "
                f"{failure['detail']}", ())
    return UNKNOWN, f"unclassified failure cause {cause!r}", ()


def _from_commit_failure(failure, info, engine) -> Verdict:
    txn = _failed_txn(failure, info, engine)
    if txn is None:
        return (UNKNOWN,
                f"commit of colour {failure['colour']} failed with no "
                f"transaction round on record", ())
    if txn.downgrades:
        downgrade = txn.downgrades[-1]
        # a downgrade forced by a dead peer is mechanism, not cause:
        # the crash owns the abort
        if downgrade["dst"] and engine.node_faulted(downgrade["dst"],
                                                    failure["tick"]):
            return (CRASH_PARTITION,
                    f"txn {txn.txn}: participant {downgrade['dst']} "
                    f"crashed under the fast path "
                    f"({downgrade['reason']}, resolved "
                    f"{downgrade['resolution']})", ())
        return (FAST_PATH_DOWNGRADE,
                f"txn {txn.txn}: fast path degenerated "
                f"({downgrade['reason']}, resolved {downgrade['resolution']}"
                f" via {downgrade['dst']})", ())
    if txn.cause in ("vote-rollback", "prepare-refused", "fast-path-downgrade"):
        crashed = _vote(txn, reasons=_CRASH_VOTE_REASONS)
        if crashed is not None:
            return (CRASH_PARTITION,
                    f"txn {txn.txn}: participant {crashed['node']} "
                    f"restarted mid-prepare ({crashed['reason']})", ())
        rollback = _vote(txn, votes=("rollback", "refused"))
        if rollback is not None:
            return (VOTE_ROLLBACK,
                    f"txn {txn.txn}: participant {rollback['node']} voted "
                    f"{rollback['vote']}"
                    + (f" ({rollback['reason']})" if rollback["reason"]
                       else ""), ())
        return VOTE_ROLLBACK, f"txn {txn.txn}: a participant voted no", ()
    if txn.cause in ("participant-unreachable", "action-aborted"):
        voted = {v["node"] for v in txn.votes}
        silent = [p for p in txn.participants if p not in voted]
        crashed = [p for p in silent or txn.participants
                   if engine.node_faulted(p, failure["tick"])]
        if crashed:
            return (CRASH_PARTITION,
                    f"txn {txn.txn}: participant {crashed[0]} crashed "
                    f"before deciding", ())
        return (INJECTED_FAULT,
                f"txn {txn.txn}: participant "
                f"{silent[0] if silent else txn.participants[0]} "
                f"unreachable with every node alive", ())
    if txn.cause == "colour-order-cascade":
        return (CASCADE,
                f"txn {txn.txn}: an earlier colour's round failed first", ())
    return (UNKNOWN,
            f"txn {txn.txn} aborted with unclassified cause "
            f"{txn.cause!r}", ())


def _failed_txn(failure, info, engine):
    """The abort-decided round of the failed colour (latest wins)."""
    colour = failure["colour"]
    found = None
    for txn_id in info.txns:
        txn = engine.txn_info(txn_id)
        if txn is None or txn.decision == "commit":
            continue
        if colour and txn.colour != colour:
            continue
        found = txn
    return found


def _refusal(info, errors, object_uid: str = "") -> Optional[dict]:
    """Earliest matching lock refusal (preferring the named object)."""
    if object_uid:
        for refusal in info.refusals:
            if refusal["error"] in errors and refusal["object"] == object_uid:
                return refusal
    for refusal in info.refusals:
        if refusal["error"] in errors:
            return refusal
    return None


def _refusal_detail(refusal) -> str:
    waited = f"{refusal['mode']} on {refusal['object']}"
    if refusal["node"]:
        waited += f"@{refusal['node']}"
    head = (f"deadlock victim waiting for {waited}"
            if refusal["error"] == "DeadlockDetected"
            else f"gave up waiting for {waited}")
    if refusal["colour"]:
        head += f" (colour {refusal['colour']})"
    if refusal["blockers"]:
        top = refusal["blockers"][0]
        head += f"; blocked by {top.holder}"
        if top.colour:
            head += f" [{top.colour}]"
    return head


def _vote(txn, votes=None, reasons=None) -> Optional[dict]:
    for vote in txn.votes:
        if vote["reason"] == "presumed-abort-straggler":
            continue  # an echo of the abort, never its cause
        if votes is not None and vote["vote"] in votes:
            return vote
        if reasons is not None and vote["reason"] in reasons:
            return vote
    return None
