"""Commit critical-path analysis over saved span trees.

Works on the plain span dicts of an ``Observability.save`` dump (or
``Tracer.to_dicts()``): for every ``commit`` span it extracts the *gating
chain* — starting at the commit, repeatedly descend into the child span
that finished last, i.e. the one the parent actually waited for — which
for a 2PC commit reads ``commit → 2pc:<colour> → rpc:txn_prepare →
serve:txn_prepare`` and names the participant that bounded the round.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

Span = Dict[str, Any]


def _by_parent(spans: List[Span]) -> Dict[Optional[str], List[Span]]:
    children: Dict[Optional[str], List[Span]] = {}
    for span in spans:
        if not isinstance(span, dict):
            continue
        children.setdefault(span.get("parent_id"), []).append(span)
    return children


def _duration(span: Span) -> float:
    start = float(span.get("start") or 0.0)
    end = span.get("end")
    return (float(end) - start) if end is not None else 0.0


def _action_of(spans: List[Span], commit: Span) -> Dict[str, str]:
    """The owning action's uid/name, read off the commit span's parent."""
    parents = {s.get("span_id"): s for s in spans if isinstance(s, dict)}
    parent = parents.get(commit.get("parent_id"))
    if parent is None:
        return {"action": "", "action_name": ""}
    return {"action": str(parent.get("attrs", {}).get("action", "")),
            "action_name": str(parent.get("name", ""))}


def commit_spans(spans: List[Span]) -> List[Span]:
    """Every finished client-side ``commit`` span in the document."""
    return [s for s in spans
            if isinstance(s, dict) and s.get("name") == "commit"
            and s.get("kind") == "client" and s.get("end") is not None]


def critical_path(spans: List[Span], commit: Span) -> List[Dict[str, Any]]:
    """The gating chain under ``commit``: at each level, the child span
    with the latest finish is the one the level actually waited on."""
    children = _by_parent(spans)
    steps: List[Dict[str, Any]] = []
    current = commit
    while current is not None:
        attrs = current.get("attrs", {}) or {}
        steps.append({
            "name": str(current.get("name", "")),
            "node": str(current.get("node", "")),
            "dst": str(attrs.get("dst", "")),
            "start": float(current.get("start") or 0.0),
            "end": float(current.get("end") or 0.0),
            "duration": _duration(current),
        })
        finished = [c for c in children.get(current.get("span_id"), [])
                    if c.get("end") is not None]
        current = (max(finished, key=lambda c: (float(c["end"]),
                                                str(c.get("span_id"))))
                   if finished else None)
    return steps


def slowest_commits(spans: List[Span], count: int = 5) -> List[Dict[str, Any]]:
    """The ``count`` longest commits, each with its gating chain."""
    ranked = sorted(commit_spans(spans), key=_duration, reverse=True)
    out: List[Dict[str, Any]] = []
    for commit in ranked[:max(0, count)]:
        entry = _action_of(spans, commit)
        entry.update({
            "start": float(commit.get("start") or 0.0),
            "duration": _duration(commit),
            "outcome": str(commit.get("attrs", {}).get("outcome", "")),
            "steps": critical_path(spans, commit),
        })
        out.append(entry)
    return out


def describe_path(entry: Dict[str, Any]) -> List[str]:
    """Render one ``slowest_commits`` entry as indented text lines."""
    head = (f"{entry.get('action') or entry.get('action_name') or '?'}: "
            f"commit took {entry['duration']:g} ticks "
            f"(start {entry['start']:g}")
    if entry.get("outcome"):
        head += f", {entry['outcome']}"
    lines = [head + ")"]
    total = entry["duration"] or 1.0
    for depth, step in enumerate(entry["steps"]):
        where = step["node"]
        if step["dst"]:
            where += f" -> {step['dst']}"
        share = 100.0 * step["duration"] / total
        lines.append("  " * (depth + 1)
                     + f"{step['name']} [{where}] {step['duration']:g} "
                       f"ticks ({share:.0f}%)")
    return lines
