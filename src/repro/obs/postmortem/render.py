"""Text reports over postmortem records: the ``why`` CLI's output layer.

All functions take plain records (:class:`Postmortem` instances or their
``to_dict`` form is handled by the CLI before it gets here) and return
strings/lines — no I/O, so tests and the CLI share one formatter.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.obs.postmortem.records import Postmortem, UNKNOWN


def reason_histogram(records: Iterable[Postmortem]) -> Dict[str, int]:
    """Aborted-action counts per attributed reason."""
    counts: Dict[str, int] = {}
    for record in records:
        if record.outcome == "aborted":
            reason = record.reason or UNKNOWN
            counts[reason] = counts.get(reason, 0) + 1
    return counts


def top_blockers(records: Iterable[Postmortem],
                 count: int = 10) -> List[Tuple[Tuple[str, str], int]]:
    """(object, colour) pairs most often at the head of a blocker chain."""
    tallies: Dict[Tuple[str, str], int] = {}
    for record in records:
        if record.outcome != "aborted" or not record.blockers:
            continue
        head = record.blockers[0]
        key = (head.object, head.colour)
        tallies[key] = tallies.get(key, 0) + 1
    ranked = sorted(tallies.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:max(0, count)]


def colour_abort_counts(records: Iterable[Postmortem]) -> Dict[str, int]:
    """Per-colour abort totals as the records imply them (one per colour
    of each aborted action — the bridge's accounting)."""
    counts: Dict[str, int] = {}
    for record in records:
        if record.outcome != "aborted":
            continue
        for colour in record.colours:
            counts[colour] = counts.get(colour, 0) + 1
    return counts


def crosscheck(records: Iterable[Postmortem],
               metrics_doc: Dict) -> List[str]:
    """Mismatches between attribution totals and the dump's own
    ``actions_aborted_total{colour=}`` counters — empty means the engine
    accounted for every abort the bridge counted, colour by colour."""
    counted: Dict[str, float] = {}
    for row in (metrics_doc or {}).get("counters", []):
        if row.get("name") != "actions_aborted_total":
            continue
        colour = (row.get("labels") or {}).get("colour")
        if colour is None:
            continue
        counted[colour] = counted.get(colour, 0.0) + float(row.get("value", 0))
    attributed = colour_abort_counts(records)
    problems: List[str] = []
    for colour in sorted(set(counted) | set(attributed)):
        have, want = attributed.get(colour, 0), counted.get(colour, 0.0)
        if float(have) != want:
            problems.append(
                f"colour {colour}: {have} attributed abort(s) vs "
                f"{want:g} counted by actions_aborted_total")
    return problems


def render_record(record: Postmortem) -> List[str]:
    """One record as indented text lines (record line, then evidence)."""
    lines = [str(record)]
    window = f"  window [{record.begin:g}, {record.end:g}]"
    if record.colours:
        window += " colours " + ",".join(record.colours)
    if record.node:
        window += f" @ {record.node}"
    lines.append(window)
    for txn in record.txns:
        lines.append(f"  txn {txn}")
    if record.blockers:
        lines.append("  blocked by:")
        for link in record.blockers:
            lines.append("    " + str(link))
    return lines


def abort_report(records: List[Postmortem], metrics_doc: Dict = None,
                 blocker_count: int = 5) -> Tuple[List[str], List[str]]:
    """The ``why --aborts`` body: (report lines, failure lines).

    Failure lines are non-empty when any abort attributed ``unknown`` or
    the totals cross-check fails — the CLI exits 2 on those.
    """
    aborted = [r for r in records if r.outcome == "aborted"]
    lines = [f"{len(aborted)} aborted action(s) "
             f"across {len(records)} record(s)"]
    histogram = reason_histogram(aborted)
    for reason, count in sorted(histogram.items(),
                                key=lambda kv: (-kv[1], kv[0])):
        lines.append(f"  {reason}: {count}")
    hot = top_blockers(aborted, count=blocker_count)
    if hot:
        lines.append("top blockers (object, colour):")
        for (obj, colour), count in hot:
            lines.append(f"  {obj} [{colour or '-'}]: "
                         f"{count} abort(s) queued behind it")
    if aborted:
        lines.append("aborts:")
        for record in aborted:
            lines.extend("  " + line for line in render_record(record))
    failures: List[str] = []
    unknown = histogram.get(UNKNOWN, 0)
    if unknown:
        failures.append(f"{unknown} abort(s) attributed '{UNKNOWN}'")
    if metrics_doc is not None:
        failures.extend(crosscheck(records, metrics_doc))
    if failures:
        lines.append("ATTRIBUTION GAPS:")
        lines.extend(f"  {line}" for line in failures)
    return lines, failures
