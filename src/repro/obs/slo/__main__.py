"""CLI: render SLO ledgers from saved dumps, or evaluate dumps offline.

Usage::

    python -m repro.obs.slo run.trace.json               # saved ledger
    python -m repro.obs.slo soak-out/                    # soak segment dir
    python -m repro.obs.slo old.trace.json --evaluate    # no ledger? re-run
    python -m repro.obs.slo run.trace.json --json

Two modes, picked automatically:

* **ledger mode** — the dump(s) carry ``extra["slo"]`` written by a live
  :class:`~repro.obs.slo.engine.SLOEngine`; breaches are rendered as a
  timeline (deduplicated across segment slices).
* **evaluate mode** — no ledger anywhere: latency/abort objectives are
  re-evaluated offline from the sampler timeline points, and
  zero-tolerance objectives from the dump's final counters.

Exit codes follow the obs-CLI contract: 0 = objectives met, 1 = unusable
input, 2 = at least one breach.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.export import load_trace
from repro.obs.report import aggregate_documents, expand_paths
from repro.obs.slo.engine import evaluate_timeline
from repro.obs.slo.objectives import Objective, default_objectives


def _load_documents(paths: List[str]) -> Any:
    documents = []
    for path in paths:
        try:
            raw = load_trace(path)
        except (OSError, json.JSONDecodeError) as error:
            return f"error: cannot read {path}: {error}"
        if not isinstance(raw, dict):
            return (f"error: {path} is not a dump document (expected a "
                    f"JSON object, got {type(raw).__name__})")
        documents.append(raw)
    return documents


def _ledger_entries(documents: List[Dict[str, Any]]
                    ) -> Optional[List[Dict[str, Any]]]:
    """Breach entries across every dump carrying a ledger, deduplicated.

    A breach that spans a rotation boundary appears in several segment
    slices; (objective, start_tick) identifies it uniquely, and the entry
    with an ``end_tick`` (the slice that saw the recovery) wins.
    """
    found_ledger = False
    merged: Dict[Tuple[str, float], Dict[str, Any]] = {}
    for document in documents:
        section = document.get("extra", {}).get("slo")
        if not isinstance(section, dict):
            continue
        found_ledger = True
        for entry in section.get("breaches", []):
            key = (entry.get("objective", ""), entry.get("start_tick", 0.0))
            known = merged.get(key)
            if known is None or (known.get("end_tick") is None
                                 and entry.get("end_tick") is not None):
                merged[key] = dict(entry)
    if not found_ledger:
        return None
    return [merged[key] for key in sorted(merged)]


def _zero_breaches(documents: List[Dict[str, Any]],
                   objectives: List[Objective]) -> List[Dict[str, Any]]:
    """Zero-tolerance objectives checked against final counter totals."""
    metrics = aggregate_documents(documents)["metrics"]
    totals: Dict[str, float] = {}
    for row in metrics.get("counters", []):
        totals[row["name"]] = totals.get(row["name"], 0.0) + row["value"]
    breaches = []
    for objective in objectives:
        if objective.kind != "zero":
            continue
        total = totals.get(objective.metric, 0.0)
        if total > 0:
            breaches.append({
                "objective": objective.name, "kind": "zero",
                "colour": objective.colour, "metric": objective.metric,
                "start_tick": None, "end_tick": None, "target": 0.0,
                "burn_short": total, "burn_long": total,
                "peak_burn": total, "value": total,
            })
    return breaches


def _render(breaches: List[Dict[str, Any]], mode: str,
            status: Optional[List[Dict[str, Any]]] = None) -> str:
    lines = [f"# SLO verdict ({mode})"]
    if status:
        lines.append("")
        for row in status:
            burn = row.get("burn_short")
            burn_text = "-" if burn is None else f"{burn:.3f}"
            lines.append(f"  {row['objective']:<20} {row['state']:<10} "
                         f"burn {burn_text}")
    lines.append("")
    if not breaches:
        lines.append("objectives met: no breaches recorded")
        return "\n".join(lines)
    lines.append(f"{len(breaches)} breach(es):")
    for entry in breaches:
        start = entry.get("start_tick")
        end = entry.get("end_tick")
        window = ("(final totals)" if start is None else
                  f"[{start:g}, {'open' if end is None else f'{end:g}'}]")
        peak = entry.get("peak_burn")
        peak_text = "-" if peak is None else f"{peak:.2f}x"
        lines.append(f"  {entry.get('objective', '?'):<20} {window:<22} "
                     f"peak burn {peak_text}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.slo",
        description="Render or re-evaluate service-level objectives from "
                    "saved observability dumps.",
    )
    parser.add_argument("paths", nargs="+", metavar="path",
                        help="dump file(s) or a soak segment directory")
    parser.add_argument("--evaluate", action="store_true",
                        help="force offline re-evaluation even when the "
                             "dumps carry a saved ledger")
    parser.add_argument("--objectives", metavar="FILE", default=None,
                        help="JSON file with a list of objective dicts "
                             "(defaults to the stock objective set)")
    parser.add_argument("--latency-target", type=float, default=25.0,
                        help="commit-latency target in ticks for offline "
                             "evaluation (default 25)")
    parser.add_argument("--abort-budget", type=float, default=0.25,
                        help="abort-rate ceiling for offline evaluation "
                             "(default 0.25)")
    parser.add_argument("--json", action="store_true",
                        help="print the verdict as JSON")
    args = parser.parse_args(argv)

    paths = expand_paths(args.paths)
    if paths is None:
        return 1
    documents = _load_documents(paths)
    if isinstance(documents, str):
        print(documents, file=sys.stderr)
        return 1

    if args.objectives is not None:
        try:
            with open(args.objectives, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
            objectives = [Objective.from_dict(entry) for entry in raw]
        except (OSError, json.JSONDecodeError, TypeError,
                ValueError) as error:
            print(f"error: cannot load objectives from {args.objectives}: "
                  f"{error}", file=sys.stderr)
            return 1
    else:
        objectives = default_objectives(
            latency_target=args.latency_target,
            abort_budget=args.abort_budget)

    status = None
    ledger = None if args.evaluate else _ledger_entries(documents)
    if ledger is not None:
        mode, breaches = "saved ledger", ledger
    else:
        points: List[Dict[str, Any]] = []
        for document in documents:
            timeline = document.get("extra", {}).get("timeline")
            if isinstance(timeline, dict):
                points.extend(timeline.get("points", []))
        has_metrics = any(isinstance(d.get("metrics"), dict)
                          for d in documents)
        if not points and not has_metrics:
            print("error: no saved SLO ledger, no sampler timeline and no "
                  "metrics in the input — nothing to evaluate",
                  file=sys.stderr)
            return 1
        engine = evaluate_timeline(points, objectives)
        breaches = list(engine.breaches) + _zero_breaches(documents,
                                                          objectives)
        status = engine.window_status()
        mode = "offline evaluation"

    if args.json:
        print(json.dumps({"mode": mode, "breaches": breaches,
                          "status": status}, indent=2, sort_keys=True))
    else:
        print(_render(breaches, mode, status=status))
    return 2 if breaches else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
