"""The SLO engine: multi-window burn-rate evaluation of objectives.

The engine rides the :class:`~repro.obs.perf.sampler.TimeSeriesSampler` —
every sampled point triggers one *frame*: cumulative measures are read
from the metrics registry, appended to a bounded per-objective history,
and each objective's short and long windows are re-evaluated.

A breach opens when **both** windows burn past the objective's threshold
(one noisy interval cannot page; a sustained regression pages within
``short_window`` points) and closes when the short window recovers.  Each
transition is observable three ways at once:

* a ``slo.breach`` / ``slo.recovered`` event on the hub bus (critical
  kinds — the flight recorder always retains them);
* a ``slo_breach_total{objective=...}`` counter increment;
* a frozen flight-recorder snapshot (the black box as of the breach);

and every breach lands in a bounded ledger that travels in
``Observability.save`` dumps under ``extra["slo"]``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.slo.objectives import Objective, default_objectives

#: ledger entries retained per engine; older breaches are dropped counted
MAX_BREACHES = 256

#: histogram metric -> per-colour point-key prefix in sampler timelines
#: (kept in sync with ``TimeSeriesSampler._COLOUR_HISTOGRAMS``)
POINT_PREFIXES = {
    "lock_wait_time": "lock_wait",
    "twopc_prepare_time": "twopc_prepare",
    "commit_latency": "commit_latency",
}


class SLOEngine:
    """Evaluates declarative objectives over sliding sampler windows."""

    def __init__(self, hub=None, objectives: Optional[List[Objective]] = None,
                 max_breaches: int = MAX_BREACHES):
        self.hub = hub
        self.objectives = list(objectives) if objectives is not None \
            else default_objectives()
        names = [objective.name for objective in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names in {names}")
        self.max_breaches = max_breaches
        self.frames = 0
        self.breaches: List[Dict[str, Any]] = []
        self.dropped_breaches = 0
        #: objective name -> open ledger entry while breaching
        self._active: Dict[str, Dict[str, Any]] = {}
        #: objective name -> deque of (tick, measure tuple)
        self._history: Dict[str, Deque[Tuple[float, Tuple]]] = {
            objective.name: deque(maxlen=objective.long_window + 1)
            for objective in self.objectives
        }
        if hub is not None:
            hub.slo = self

    # -- wiring ---------------------------------------------------------------

    def attach(self, sampler) -> "SLOEngine":
        """Evaluate one frame per sampler point (the engine's clock)."""
        sampler.add_point_listener(self._on_point)
        return self

    def _on_point(self, point: Dict[str, Any]) -> None:
        self.observe_frame(point["tick"], self._measure())

    # -- measurement -----------------------------------------------------------

    def _measure(self) -> Dict[str, Tuple]:
        """Cumulative measures per objective, straight from the registry."""
        metrics = self.hub.metrics
        out: Dict[str, Tuple] = {}
        for objective in self.objectives:
            if objective.kind == "latency":
                count = total = 0.0
                for labels, histogram in metrics.series(objective.metric):
                    if objective.colour and \
                            labels.get("colour") != objective.colour:
                        continue
                    count += histogram.count
                    total += histogram.total
                out[objective.name] = (count, total)
            elif objective.kind == "abort_rate":
                pair = []
                for metric in ("actions_aborted_total",
                               "actions_committed_total"):
                    value = 0.0
                    for labels, counter in metrics.series(metric):
                        if objective.colour and \
                                labels.get("colour") != objective.colour:
                            continue
                        value += counter.value
                    pair.append(value)
                out[objective.name] = tuple(pair)
            elif objective.kind == "zero":
                out[objective.name] = (sum(
                    counter.value
                    for _, counter in metrics.series(objective.metric)),)
            else:  # health
                worst, node = 0.0, ""
                for labels, gauge in metrics.series(
                        objective.metric or "cluster_health"):
                    if gauge.value > worst:
                        worst, node = gauge.value, labels.get("node", "")
                out[objective.name] = (worst, node)
        return out

    # -- evaluation ------------------------------------------------------------

    def observe_frame(self, tick: float,
                      measures: Dict[str, Tuple]) -> List[Dict[str, Any]]:
        """Append one frame of cumulative measures and re-evaluate.

        Returns the ledger entries *opened* by this frame (tests and the
        soak runner use this to correlate breaches with fault windows).
        """
        self.frames += 1
        opened: List[Dict[str, Any]] = []
        for objective in self.objectives:
            if objective.name not in measures:
                continue
            history = self._history[objective.name]
            history.append((tick, measures[objective.name]))
            entry = self._evaluate(objective, history, tick)
            if entry is not None:
                opened.append(entry)
        return opened

    def _burn(self, objective: Objective,
              history: Deque[Tuple[float, Tuple]],
              window: int) -> Tuple[Optional[float], Optional[float]]:
        """(burn rate, windowed value) over the last ``window`` frames."""
        if len(history) < 2:
            return None, None
        lo = history[max(0, len(history) - 1 - window)][1]
        hi = history[-1][1]
        if objective.kind == "latency":
            count = hi[0] - lo[0]
            if count <= 0:
                return None, None
            mean = (hi[1] - lo[1]) / count
            return mean / objective.target, mean
        if objective.kind == "abort_rate":
            aborted = hi[0] - lo[0]
            total = aborted + (hi[1] - lo[1])
            if total <= 0:
                return None, None
            fraction = aborted / total
            return fraction / objective.target, fraction
        if objective.kind == "zero":
            new = hi[0] - lo[0]
            return new, new
        # health: not a rate — the current worst rank plays both roles
        return hi[0], hi[0]

    def _breaching(self, objective: Objective, short: Optional[float],
                   long: Optional[float]) -> bool:
        if objective.kind in ("latency", "abort_rate"):
            return (short is not None and long is not None
                    and short >= objective.burn_threshold
                    and long >= objective.burn_threshold)
        if objective.kind == "zero":
            return short is not None and short > 0
        return short is not None and short > objective.target

    def _recovered(self, objective: Objective,
                   short: Optional[float]) -> bool:
        if short is None:
            return False
        if objective.kind in ("latency", "abort_rate"):
            return short < objective.burn_threshold
        if objective.kind == "zero":
            return short <= 0
        return short <= objective.target

    def _evaluate(self, objective: Objective,
                  history: Deque[Tuple[float, Tuple]],
                  tick: float) -> Optional[Dict[str, Any]]:
        short, value = self._burn(objective, history, objective.short_window)
        long, _ = self._burn(objective, history, objective.long_window)
        active = self._active.get(objective.name)
        if active is not None:
            active["burn_short"] = short
            active["burn_long"] = long
            if short is not None and short > active["peak_burn"]:
                active["peak_burn"] = short
                active["value"] = value
            if self._recovered(objective, short):
                active["end_tick"] = tick
                del self._active[objective.name]
                self._signal("slo.recovered", objective, active)
            return None
        if not self._breaching(objective, short, long):
            return None
        entry = {
            "objective": objective.name,
            "kind": objective.kind,
            "colour": objective.colour,
            "metric": objective.metric,
            "start_tick": tick,
            "end_tick": None,
            "target": objective.target,
            "burn_short": short,
            "burn_long": long,
            "peak_burn": short,
            "value": value,
        }
        if objective.kind == "health":
            # name the worst server so the breach is actionable on its own
            entry["node"] = history[-1][1][1]
        self._record(entry)
        self._active[objective.name] = entry
        self._signal("slo.breach", objective, entry)
        return entry

    def _record(self, entry: Dict[str, Any]) -> None:
        if len(self.breaches) >= self.max_breaches:
            self.dropped_breaches += 1
            return
        self.breaches.append(entry)

    def _signal(self, kind: str, objective: Objective,
                entry: Dict[str, Any]) -> None:
        if self.hub is None:
            return
        self.hub.emit(kind, objective=objective.name,
                      objective_kind=objective.kind,
                      colour=objective.colour,
                      burn=f"{entry['burn_short'] or 0.0:.3f}",
                      value=f"{entry['value'] or 0.0:.3f}",
                      target=f"{objective.target:g}")
        if kind == "slo.breach":
            self.hub.count("slo_breach_total", objective=objective.name)
            flight = getattr(self.hub, "flight", None)
            if flight is not None:
                flight.freeze(
                    f"slo breach: {objective.name} "
                    f"(burn {entry['burn_short'] or 0.0:.2f}x)",
                    kind="slo-breach")

    # -- queries ---------------------------------------------------------------

    @property
    def breach_total(self) -> int:
        return len(self.breaches) + self.dropped_breaches

    def active(self) -> List[str]:
        """Names of objectives currently in breach."""
        return sorted(self._active)

    def window_status(self) -> List[Dict[str, Any]]:
        """Per-objective verdict as of the latest frame."""
        out = []
        for objective in self.objectives:
            history = self._history[objective.name]
            short, value = self._burn(objective, history,
                                      objective.short_window)
            long, _ = self._burn(objective, history, objective.long_window)
            if objective.name in self._active:
                state = "breaching"
            elif short is None:
                state = "no-data"
            else:
                state = "ok"
            out.append({"objective": objective.name, "state": state,
                        "burn_short": short, "burn_long": long,
                        "value": value})
        return out

    def dump(self) -> Dict[str, Any]:
        """JSON-able section for ``Observability.save`` (``extra["slo"]``)."""
        return {
            "objectives": [objective.to_dict()
                           for objective in self.objectives],
            "frames": self.frames,
            "breach_total": self.breach_total,
            "dropped_breaches": self.dropped_breaches,
            "active": self.active(),
            "breaches": [dict(entry) for entry in self.breaches],
            "status": self.window_status(),
        }


def evaluate_timeline(points: List[Dict[str, Any]],
                      objectives: Optional[List[Objective]] = None,
                      ) -> SLOEngine:
    """Offline evaluation of latency/abort objectives from saved points.

    Rebuilds cumulative frames from a sampler timeline's per-colour
    deltas, so dumps written *without* a live engine can still get a
    verdict after the fact.  ``zero``/``health`` objectives need registry
    state that points do not carry and are skipped here (the CLI checks
    them against the dump's final counters instead).
    """
    engine = SLOEngine(hub=None, objectives=objectives)
    supported = [objective for objective in engine.objectives
                 if objective.kind in ("latency", "abort_rate")]
    # objective name -> running cumulative tuple
    running: Dict[str, List[float]] = {
        objective.name: [0.0, 0.0] for objective in supported}
    for point in points:
        colours = point.get("colours", {})
        frame: Dict[str, Tuple] = {}
        for objective in supported:
            totals = running[objective.name]
            if objective.kind == "latency":
                prefix = POINT_PREFIXES.get(objective.metric)
                if prefix is None:
                    continue
                for colour, row in colours.items():
                    if objective.colour and colour != objective.colour:
                        continue
                    count = row.get(f"{prefix}_count", 0.0)
                    mean = row.get(f"{prefix}_mean")
                    if not count or mean is None:
                        continue
                    totals[0] += count
                    totals[1] += count * mean
            else:
                for colour, row in colours.items():
                    if objective.colour and colour != objective.colour:
                        continue
                    totals[0] += row.get("aborted", 0.0)
                    totals[1] += row.get("committed", 0.0)
            frame[objective.name] = tuple(totals)
        engine.observe_frame(point.get("tick", 0.0), frame)
    return engine
