"""Declarative service-level objectives over the observability stack.

An :class:`Objective` names one promise the system makes and how to check
it against hub metrics.  Four kinds cover the fault-tolerance story of the
paper's applications:

``latency``
    A windowed-mean ceiling on a labelled histogram (e.g. ``commit_latency``
    per colour).  The *burn rate* is ``window_mean / target`` — 1.0 means
    running exactly at target, 2.0 means twice over budget.
``abort_rate``
    A ceiling on ``aborted / (aborted + committed)`` over the window,
    normalised by ``target`` the same way.
``zero``
    Zero tolerance for a counter (auditor findings, introspection drift):
    any increase inside the short window is a breach.
``health``
    A ceiling on the worst ``cluster_health`` gauge rank
    (0 = healthy, 1 = degraded, 2 = stalled); ``target`` is the worst
    tolerated rank.

Windows are counted in sampler points, not ticks, because objectives are
evaluated once per :class:`~repro.obs.perf.sampler.TimeSeriesSampler`
point — the sampler is the SLO engine's clock.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, List

#: the objective kinds the engine knows how to evaluate
KINDS = ("latency", "abort_rate", "zero", "health")


@dataclass(frozen=True)
class Objective:
    """One declarative promise, checked over sliding sampler windows."""

    name: str
    kind: str
    #: metric the objective watches (histogram for ``latency``, counter for
    #: ``zero``, gauge for ``health``; unused for ``abort_rate`` which
    #: always reads the action-outcome counter pair)
    metric: str = ""
    #: restrict to one colour label value ("" = aggregate over all colours)
    colour: str = ""
    target: float = 0.0
    #: burn-rate multiple at which latency/abort objectives trip (1.0 =
    #: breach as soon as the windowed value crosses the target)
    burn_threshold: float = 1.0
    #: fast window (points): catches sharp regressions, clears recoveries
    short_window: int = 3
    #: slow window (points): must *also* burn before alerting, so one noisy
    #: interval cannot page — the classic multi-window burn-rate rule
    long_window: int = 12
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("objective needs a name")
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown objective kind {self.kind!r} (expected one of "
                f"{', '.join(KINDS)})")
        if self.kind in ("latency", "zero") and not self.metric:
            raise ValueError(
                f"objective {self.name!r}: kind {self.kind!r} needs a metric")
        if self.kind in ("latency", "abort_rate") and self.target <= 0:
            raise ValueError(
                f"objective {self.name!r}: target must be > 0, "
                f"got {self.target}")
        if self.short_window < 1:
            raise ValueError(
                f"objective {self.name!r}: short_window must be >= 1")
        if self.long_window < self.short_window:
            raise ValueError(
                f"objective {self.name!r}: long_window ({self.long_window}) "
                f"must be >= short_window ({self.short_window})")
        if self.burn_threshold <= 0:
            raise ValueError(
                f"objective {self.name!r}: burn_threshold must be > 0")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "Objective":
        known = {f.name for f in fields(Objective)}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ValueError(f"unknown objective fields: {', '.join(unknown)}")
        return Objective(**raw)


def default_objectives(latency_target: float = 25.0,
                       abort_budget: float = 0.25,
                       latency_metric: str = "commit_latency",
                       colour: str = "",
                       include_health: bool = True,
                       ) -> List[Objective]:
    """The stock objective set a cluster soak watches.

    ``latency_target`` is in sim ticks; ``abort_budget`` is a fraction of
    terminated actions.  The two zero-tolerance objectives (auditor
    findings, introspection drift) always apply; ``cluster-health``
    tolerates ``degraded`` but breaches on any ``stalled`` server.
    """
    objectives = [
        Objective("commit-latency", "latency", metric=latency_metric,
                  colour=colour, target=latency_target,
                  short_window=3, long_window=9,
                  description="windowed mean commit latency vs target"),
        Objective("abort-rate", "abort_rate", colour=colour,
                  target=abort_budget, short_window=6, long_window=12,
                  description="aborted fraction of terminated actions"),
        Objective("audit-findings", "zero", metric="audit_findings_total",
                  description="online invariant auditor findings"),
        Objective("introspect-drift", "zero",
                  metric="introspect_drift_total",
                  description="live-introspection drift reports"),
    ]
    if include_health:
        objectives.append(Objective(
            "cluster-health", "health", metric="cluster_health", target=1.0,
            description="worst server health rank (breach on stalled)"))
    return objectives
