"""Service-level objectives: layer 6 of the observability stack.

Declarative per-colour objectives (:mod:`repro.obs.slo.objectives`)
evaluated over sliding windows of sampler points with multi-window
burn-rate alerting (:mod:`repro.obs.slo.engine`).  Attach to a cluster
with ``cluster.attach_slo()`` (requires ``attach_perf`` first — the
sampler is the engine's clock); inspect saved ledgers and evaluate old
dumps offline with ``python -m repro.obs.slo``.
"""

from repro.obs.slo.engine import MAX_BREACHES, SLOEngine, evaluate_timeline
from repro.obs.slo.objectives import KINDS, Objective, default_objectives

__all__ = [
    "KINDS",
    "MAX_BREACHES",
    "Objective",
    "SLOEngine",
    "default_objectives",
    "evaluate_timeline",
]
