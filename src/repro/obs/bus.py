"""The observability event bus.

Instrumentation points publish small structured :class:`ObsEvent`s; any
number of subscribers consume them — the metrics registry, the tracer
bridge, and the backwards-compatible :class:`~repro.trace.TraceRecorder`
are all subscribers over this one stream.  Publishing is synchronous and
exception-isolated: a failing subscriber never breaks the publisher.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List


@dataclass(frozen=True)
class ObsEvent:
    """One observed occurrence."""

    tick: float
    kind: str                          # e.g. "action.begin", "lock.granted"
    labels: Dict[str, Any] = field(default_factory=dict)

    def label(self, key: str, default: Any = None) -> Any:
        return self.labels.get(key, default)


Subscriber = Callable[[ObsEvent], None]


class EventBus:
    """Synchronous fan-out of ObsEvents to subscribers (thread-safe)."""

    def __init__(self):
        self._mutex = threading.Lock()
        self._subscribers: List[Subscriber] = []

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        with self._mutex:
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        with self._mutex:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    def publish(self, event: ObsEvent) -> None:
        with self._mutex:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            try:
                subscriber(event)
            except Exception:
                # Observability must never take the system down with it.
                pass

    def emit(self, tick: float, kind: str, **labels: Any) -> ObsEvent:
        event = ObsEvent(tick=tick, kind=kind, labels=labels)
        self.publish(event)
        return event
