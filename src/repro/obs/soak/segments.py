"""Naming and discovery of soak segment dumps.

A soak run rotates its observability state into a directory of numbered
*segments* — each a normal ``repro-obs/1`` document whose metrics are
**deltas** over the segment window (summing all segments telescopes back
to the cumulative totals of an unrotated run).  This module is the one
place that knows the naming scheme, so the runner that writes segments
and the CLIs that aggregate them (``repro.obs.report``,
``repro.obs.audit``, ``repro.obs.slo``) cannot drift apart.
"""

from __future__ import annotations

import os
from typing import List

SEGMENT_PREFIX = "segment-"
SEGMENT_SUFFIX = ".trace.json"
#: the end-of-run soak summary written next to the segments
SUMMARY_NAME = "soak.json"


def segment_name(index: int) -> str:
    """``segment-0007.trace.json`` — zero-padded so sorted() = segment order."""
    return f"{SEGMENT_PREFIX}{index:04d}{SEGMENT_SUFFIX}"


def segment_paths(directory: str) -> List[str]:
    """Every segment in ``directory``, in segment (= rotation) order."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    return [os.path.join(directory, name)
            for name in sorted(names)
            if name.startswith(SEGMENT_PREFIX)
            and name.endswith(SEGMENT_SUFFIX)]


def summary_path(directory: str) -> str:
    return os.path.join(directory, SUMMARY_NAME)
