"""The soak observatory: long-horizon seeded chaos runs, bounded memory.

A :class:`SoakRunner` drives one *arm* of a seeded chaos scenario for
hours of simulated time while the full observability stack (sampler,
flight recorder, live introspection, SLO engine) watches.  Memory stays
bounded **regardless of horizon** through segment rotation: every
``segment_every`` ticks the run's observability state is streamed out as
one ``repro-obs/1`` segment document —

* metrics as **deltas** over the window (snapshot-and-diff via
  :func:`repro.obs.metrics.dump_delta`; summing all segments telescopes
  back to the cumulative totals of an unrotated run),
* the finished spans of the window (``Tracer.drain_finished``),
* the auditor's event slice (``event_dicts(since=...)`` + ``drop_events``),
* the drained flight-recorder ring and its frozen breach snapshots,
* the sampler points of the window and the SLO ledger slice —

into a directory that ``python -m repro.obs.report`` / ``repro.obs.audit``
/ ``repro.obs.slo`` aggregate in segment order.  An end-of-run summary
(``soak.json``) records per-segment SLO verdicts, the breach timeline and
the measured peak retention of every bounded structure.

Arms:

``clean``
    No fault injection; the acceptance bar is *zero* SLO breaches.
``faulty``
    A seeded mid-run network-degradation burst (delay surge + message
    drops over a fixed window) that must trip the commit-latency burn
    objective — and be attributed to the burst window by the ledger.
"""

from __future__ import annotations

import json
import os
import random
from typing import Any, Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkConfig
from repro.obs.metrics import dump_delta
from repro.obs.slo import default_objectives
from repro.obs.soak.segments import segment_name, summary_path
from repro.sim.kernel import Timeout

ARMS = ("clean", "faulty")

FORMAT = "repro-soak/1"


class SoakRunner:
    """One seeded soak arm: build, run, rotate, report."""

    def __init__(self, out_dir: Optional[str] = None, arm: str = "faulty",
                 seed: int = 21, horizon: float = 7200.0,
                 segment_every: float = 1800.0,
                 sample_interval: float = 20.0,
                 workers: int = 3, objects: int = 8, op_pause: float = 10.0,
                 latency_target: float = 12.0, abort_budget: float = 0.25,
                 surge: float = 8.0, burst_start: Optional[float] = None,
                 burst_duration: Optional[float] = None,
                 burst_drop: float = 0.02,
                 flight_capacity: int = 1024,
                 sampler_max_points: int = 1024,
                 metrics_max_series: int = 64,
                 max_finished_spans: Optional[int] = None,
                 rotate: bool = True, introspection: bool = True):
        if arm not in ARMS:
            raise ValueError(f"unknown arm {arm!r} (expected one of {ARMS})")
        if horizon <= 0 or segment_every <= 0 or sample_interval <= 0:
            raise ValueError("horizon, segment_every and sample_interval "
                             "must all be > 0")
        self.out_dir = out_dir
        self.arm = arm
        self.seed = seed
        self.horizon = horizon
        self.segment_every = segment_every
        self.sample_interval = sample_interval
        self.workers = workers
        self.objects = objects
        self.op_pause = op_pause
        self.latency_target = latency_target
        self.abort_budget = abort_budget
        self.surge = surge
        #: default burst window: [35%, 50%] of the horizon
        self.burst_start = (burst_start if burst_start is not None
                            else 0.35 * horizon)
        self.burst_duration = (burst_duration if burst_duration is not None
                               else 0.15 * horizon)
        self.burst_drop = burst_drop
        self.flight_capacity = flight_capacity
        self.sampler_max_points = sampler_max_points
        self.metrics_max_series = metrics_max_series
        self.max_finished_spans = max_finished_spans
        self.rotate = rotate
        self.introspection = introspection

        self.cluster: Optional[Cluster] = None
        self.sampler = None
        self.recorder = None
        self.inspector = None
        self.engine = None
        self.outcomes = {"committed": 0, "aborted": 0}
        self.segment_files: List[str] = []
        self.segment_verdicts: List[Dict[str, Any]] = []
        #: measured maxima of every bounded in-memory structure
        self.peaks: Dict[str, int] = {
            "spans": 0, "audit_events": 0, "flight_ring": 0,
            "metric_series": 0, "sampler_points": 0, "breach_ledger": 0,
        }
        self._metrics_baseline: Dict[str, Any] = {}
        self._last_event_seq = 0
        self._segment_index = 0
        self._segment_start = 0.0

    # -- build ----------------------------------------------------------------

    def _build(self) -> None:
        self.cluster = Cluster(
            seed=self.seed, config=NetworkConfig(),
            metrics_max_series=self.metrics_max_series,
            max_finished_spans=self.max_finished_spans)
        cluster = self.cluster
        self.nodes = ("n0", "n1", "n2")
        for name in self.nodes:
            cluster.add_node(name)
        self.sampler, self.recorder = cluster.attach_perf(
            interval=self.sample_interval,
            max_points=self.sampler_max_points,
            recorder_capacity=self.flight_capacity, seed=self.seed)
        if self.introspection:
            # generous probe timeout so a delay surge degrades health
            # verdicts instead of inventing unreachable servers
            self.inspector = cluster.attach_introspection(
                interval=self.sample_interval * 3,
                probe_timeout=self.sample_interval)
        self.engine = cluster.attach_slo(
            objectives=default_objectives(
                latency_target=self.latency_target,
                abort_budget=self.abort_budget,
                include_health=self.inspector is not None))
        self.sampler.add_point_listener(lambda _point: self._observe_peaks())

        self.refs: List[Any] = []

        def setup():
            client = cluster.client("n0", name="soak-setup")
            for index in range(self.objects):
                ref = yield from client.create(
                    self.nodes[index % len(self.nodes)], "counter", value=0)
                self.refs.append(ref)

        cluster.run_process("n0", setup())

        for worker_id in range(self.workers):
            cluster.spawn(self.nodes[worker_id % len(self.nodes)],
                          self._worker(worker_id),
                          name=f"soak-w{worker_id}")
        if self.arm == "faulty":
            self._arm_burst()
        if self.rotate and self.out_dir:
            cluster.kernel.every(self.segment_every, self._rotate)

    def _worker(self, worker_id: int):
        cluster = self.cluster
        client = cluster.client(self.nodes[worker_id % len(self.nodes)],
                                name=f"soak-w{worker_id}")
        rng = random.Random(self.seed * 1009 + worker_id)
        stop_at = self.horizon - 2 * self.op_pause
        op = 0
        while cluster.kernel.now < stop_at:
            picks = rng.sample(self.refs, k=min(2, len(self.refs)))
            # canonical acquisition order: the soak measures sustained
            # objectives, not deadlock-victim throughput
            picks.sort(key=lambda ref: (ref.node, ref.uid))
            action = client.top_level(f"w{worker_id}.op{op}")
            try:
                for ref in picks:
                    yield from client.invoke(action, ref, "increment", 1)
                yield from client.commit(action)
                self.outcomes["committed"] += 1
            except Exception:
                self.outcomes["aborted"] += 1
                if not action.status.terminated:
                    yield from client.abort(action)
            op += 1
            yield Timeout(self.op_pause * (0.5 + rng.random()))

    def _arm_burst(self) -> None:
        """Schedule the seeded network-degradation window.

        Mutating the live ``NetworkConfig`` is deterministic: the fault
        RNG consumes exactly two draws per send regardless of the
        probabilities in force, so the burst changes message *fates*, not
        the RNG stream alignment.
        """
        config = self.cluster.network.config
        base = (config.min_delay, config.max_delay, config.drop_probability)
        obs = self.cluster.obs

        def start() -> None:
            config.min_delay = base[0] * self.surge
            config.max_delay = base[1] * self.surge
            config.drop_probability = min(0.9, base[2] + self.burst_drop)
            obs.emit("soak.fault_burst", phase="start", arm=self.arm,
                     surge=f"{self.surge:g}")

        def stop() -> None:
            config.min_delay, config.max_delay = base[0], base[1]
            config.drop_probability = base[2]
            obs.emit("soak.fault_burst", phase="stop", arm=self.arm)

        self.cluster.kernel.schedule(self.burst_start, start)
        self.cluster.kernel.schedule(self.burst_start + self.burst_duration,
                                     stop)

    # -- rotation --------------------------------------------------------------

    def _observe_peaks(self) -> None:
        obs = self.cluster.obs
        observed = {
            "spans": len(obs.tracer.spans),
            "audit_events": len(obs.auditor.events),
            "flight_ring": len(self.recorder.ring_events()),
            "metric_series": obs.metrics.series_count(),
            "sampler_points": len(self.sampler.points),
            "breach_ledger": len(self.engine.breaches),
        }
        for key, value in observed.items():
            if value > self.peaks[key]:
                self.peaks[key] = value

    def _segment_document(self, start: float, end: float) -> Dict[str, Any]:
        obs = self.cluster.obs
        current = obs.metrics.dump()
        metrics = dump_delta(current, self._metrics_baseline)
        self._metrics_baseline = current
        spans = [span.to_dict() for span in obs.tracer.drain_finished()]
        events = obs.auditor.event_dicts(since=self._last_event_seq)
        if events:
            self._last_event_seq = events[-1]["seq"]
            obs.auditor.drop_events(self._last_event_seq)
        points = [point for point in self.sampler.points
                  if start < point["tick"] <= end]
        breaches = [dict(entry) for entry in self.engine.breaches
                    if entry["start_tick"] <= end
                    and (entry["end_tick"] is None
                         or entry["end_tick"] > start)]
        status = self.engine.window_status()
        verdict = {
            "index": self._segment_index, "start_tick": start,
            "end_tick": end,
            "breaches": len(breaches),
            "breaching": [row["objective"] for row in status
                          if row["state"] == "breaching"],
        }
        self.segment_verdicts.append(verdict)
        return {
            "format": "repro-obs/1",
            "spans": spans,
            "metrics": metrics,
            "events": events,
            "extra": {
                "segment": {"index": self._segment_index,
                            "start_tick": start, "end_tick": end,
                            "arm": self.arm, "seed": self.seed},
                "flight_recorder": {
                    "capacity": self.recorder.capacity,
                    "sample_rate": self.recorder.sample_rate,
                    "evicted": self.recorder.evicted,
                    "skipped": self.recorder.skipped,
                    "events": self.recorder.drain(),
                    "finding_snapshots": self.recorder.take_snapshots(),
                },
                "timeline": {"interval": self.sampler.interval,
                             "stride": self.sampler.stride,
                             "decimations": self.sampler.decimations,
                             "points": points},
                "slo": {"breaches": breaches, "status": status,
                        "frames": self.engine.frames,
                        "active": self.engine.active()},
            },
        }

    def _rotate(self) -> None:
        self._observe_peaks()
        now = self.cluster.kernel.now
        if now <= self._segment_start and self._segment_index > 0:
            return
        document = self._segment_document(self._segment_start, now)
        path = os.path.join(self.out_dir, segment_name(self._segment_index))
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
        self.segment_files.append(path)
        self._segment_index += 1
        self._segment_start = now

    # -- run -------------------------------------------------------------------

    def run(self) -> Dict[str, Any]:
        """Build the cluster, run the arm to its horizon, write the report."""
        if self.out_dir:
            os.makedirs(self.out_dir, exist_ok=True)
        self._build()
        self.cluster.run()
        self._observe_peaks()
        if self.rotate and self.out_dir:
            self._rotate()  # final partial segment (skipped when empty)
        findings = len(self.cluster.obs.auditor.report())
        breaches = self.engine.dump()
        exit_code = 2 if (breaches["breach_total"] > 0 or findings > 0) else 0
        summary = {
            "format": FORMAT,
            "arm": self.arm,
            "seed": self.seed,
            "horizon": self.horizon,
            "elapsed": self.cluster.kernel.now,
            "committed": self.outcomes["committed"],
            "aborted": self.outcomes["aborted"],
            "audit_findings": findings,
            "segments": [os.path.basename(path)
                         for path in self.segment_files],
            "segment_verdicts": self.segment_verdicts,
            "breach_total": breaches["breach_total"],
            "breaches": breaches["breaches"],
            "active_breaches": breaches["active"],
            "objectives": breaches["objectives"],
            "peaks": dict(self.peaks),
            "exit_code": exit_code,
        }
        if self.out_dir:
            with open(summary_path(self.out_dir), "w",
                      encoding="utf-8") as handle:
                json.dump(summary, handle, indent=2, sort_keys=True)
        return summary
