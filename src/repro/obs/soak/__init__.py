"""Long-horizon soak observatory: seeded chaos arms, streaming segments.

:class:`~repro.obs.soak.runner.SoakRunner` drives a seeded cluster
workload for hours of sim time with the full observability stack (and the
SLO engine of :mod:`repro.obs.slo`) attached, rotating bounded dump
segments into a directory that ``repro.obs.report`` / ``repro.obs.audit``
/ ``repro.obs.slo`` aggregate.  Run one from the shell with
``python -m repro.obs.soak``.
"""

from repro.obs.soak.runner import ARMS, SoakRunner
from repro.obs.soak.segments import (
    SUMMARY_NAME,
    segment_name,
    segment_paths,
    summary_path,
)

__all__ = [
    "ARMS",
    "SUMMARY_NAME",
    "SoakRunner",
    "segment_name",
    "segment_paths",
    "summary_path",
]
