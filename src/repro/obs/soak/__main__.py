"""CLI: run a seeded soak arm and report its SLO verdict.

Usage::

    python -m repro.obs.soak --arm clean --horizon 7200 --out soak-out/
    python -m repro.obs.soak --arm faulty --out soak-out/ --json
    python -m repro.obs.soak --arm clean --no-rotate       # in-memory only

Segments land in ``--out`` as ``segment-NNNN.trace.json`` plus a
``soak.json`` summary; aggregate them with ``python -m repro.obs.report
<out>``, replay them with ``repro.obs.audit <out>``, render the breach
timeline with ``repro.obs.slo <out>``.

Exit codes follow the obs-CLI contract: 0 = soak completed with every
objective met, 1 = unusable input (bad arm/horizon/out path), 2 = soak
completed but demands attention (SLO breaches or auditor findings).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro.obs.soak.runner import ARMS, SoakRunner


def _render(summary: Dict[str, Any]) -> str:
    lines = [
        f"# Soak report — arm {summary['arm']} (seed {summary['seed']})",
        "",
        f"  horizon   {summary['horizon']:g} ticks "
        f"(ran to {summary['elapsed']:g})",
        f"  actions   {summary['committed']} committed, "
        f"{summary['aborted']} aborted",
        f"  segments  {len(summary['segments'])} rotated",
        f"  findings  {summary['audit_findings']} auditor finding(s)",
        f"  breaches  {summary['breach_total']} SLO breach(es)",
    ]
    peaks = summary.get("peaks", {})
    if peaks:
        lines.append("  peak retention: " + ", ".join(
            f"{key}={value}" for key, value in sorted(peaks.items())))
    for verdict in summary.get("segment_verdicts", []):
        breaching = ",".join(verdict["breaching"]) or "-"
        lines.append(
            f"    segment {verdict['index']:>3}  "
            f"[{verdict['start_tick']:g}, {verdict['end_tick']:g}]  "
            f"breaches={verdict['breaches']}  breaching={breaching}")
    for entry in summary.get("breaches", []):
        end = entry["end_tick"]
        window = f"[{entry['start_tick']:g}, " + (
            "open]" if end is None else f"{end:g}]")
        lines.append(f"  BREACH {entry['objective']:<20} {window:<22} "
                     f"peak burn {entry['peak_burn']:.2f}x")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.soak",
        description="Run a seeded long-horizon chaos soak with streaming "
                    "segment dumps and an SLO verdict.",
    )
    parser.add_argument("--arm", default="clean", metavar="ARM",
                        help=f"scenario arm, one of {', '.join(ARMS)} "
                             f"(default clean)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="directory for segment dumps + soak.json "
                             "(omit to keep everything in memory)")
    parser.add_argument("--seed", type=int, default=21)
    parser.add_argument("--horizon", type=float, default=7200.0,
                        help="simulated run length in ticks (default 7200)")
    parser.add_argument("--segment-every", type=float, default=1800.0,
                        help="rotation period in ticks (default 1800)")
    parser.add_argument("--interval", type=float, default=20.0,
                        help="sampler interval in ticks (default 20)")
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument("--latency-target", type=float, default=12.0,
                        help="commit-latency SLO target in ticks")
    parser.add_argument("--abort-budget", type=float, default=0.25,
                        help="abort-rate SLO ceiling (fraction)")
    parser.add_argument("--surge", type=float, default=8.0,
                        help="faulty arm: delay multiplier in the burst")
    parser.add_argument("--burst-start", type=float, default=None,
                        help="faulty arm: burst start tick "
                             "(default 35%% of horizon)")
    parser.add_argument("--burst-duration", type=float, default=None,
                        help="faulty arm: burst length in ticks "
                             "(default 15%% of horizon)")
    parser.add_argument("--no-rotate", action="store_true",
                        help="disable segment rotation (unbounded memory; "
                             "reference runs only)")
    parser.add_argument("--json", action="store_true",
                        help="print the summary as JSON")
    args = parser.parse_args(argv)

    # the contract reserves exit 1 for unusable input, so validate by hand
    # instead of letting argparse exit 2 on bad values
    if args.arm not in ARMS:
        print(f"error: unknown arm {args.arm!r} (expected one of "
              f"{', '.join(ARMS)})", file=sys.stderr)
        return 1
    if args.horizon <= 0 or args.segment_every <= 0 or args.interval <= 0:
        print("error: --horizon, --segment-every and --interval must all "
              "be > 0", file=sys.stderr)
        return 1
    if args.out is not None and os.path.isfile(args.out):
        print(f"error: --out {args.out} exists and is a file, not a "
              f"directory", file=sys.stderr)
        return 1

    runner = SoakRunner(
        out_dir=args.out, arm=args.arm, seed=args.seed,
        horizon=args.horizon, segment_every=args.segment_every,
        sample_interval=args.interval, workers=args.workers,
        latency_target=args.latency_target, abort_budget=args.abort_budget,
        surge=args.surge, burst_start=args.burst_start,
        burst_duration=args.burst_duration,
        rotate=not args.no_rotate)
    summary = runner.run()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(_render(summary))
    return summary["exit_code"]


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
