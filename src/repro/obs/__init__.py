"""Observability for multi-coloured actions: metrics, tracing, exporters.

The paper's claims are per colour — failure atomicity, serializability and
permanence each hold colour-by-colour — so the instruments here are
labelled per colour (and per node, per action structure) too:

- :class:`MetricsRegistry` — counters, gauges, histograms (p50/p95/max):
  commits/aborts per colour, lock wait and hold time, lock-inheritance vs.
  permanent-commit counts, 2PC round latency, messages by kind, deadlock
  detections, recovery replays.
- :class:`Tracer` / :class:`Span` — distributed tracing with context
  propagation piggybacked on cluster message payloads, so one action's
  spans stitch across client → transport → server → 2PC participants.
- exporters — Chrome ``trace_event`` JSON (``chrome://tracing`` /
  Perfetto), plain-text reports, ASCII span trees/timelines, and a JSON
  dump consumed by ``benchmarks/`` and ``python -m repro.obs.report``.

Attach an :class:`Observability` hub::

    from repro.obs import Observability
    from repro.cluster import Cluster

    cluster = Cluster(seed=7)          # a hub on simulated time, built in
    ... run a workload ...
    print(cluster.obs.report())        # metrics
    print(cluster.obs.span_tree())     # distributed traces
    cluster.obs.save("run.trace.json") # for `python -m repro.obs.report`

For the local (threaded) runtime::

    hub = Observability()
    runtime = LocalRuntime()
    runtime.attach_observability(hub)
"""

from repro.obs.bridge import ObservabilityBridge
from repro.obs.bus import EventBus, ObsEvent
from repro.obs.export import (
    chrome_trace,
    load_trace,
    save_trace,
    span_timeline,
    span_tree,
    text_report,
)
from repro.obs.hub import Observability, colour_names
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import Span, SpanContext, Tracer, TRACE_KEY

__all__ = [
    "Counter",
    "EventBus",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsEvent",
    "Observability",
    "ObservabilityBridge",
    "Span",
    "SpanContext",
    "TRACE_KEY",
    "Tracer",
    "chrome_trace",
    "colour_names",
    "load_trace",
    "save_trace",
    "span_timeline",
    "span_tree",
    "text_report",
]
