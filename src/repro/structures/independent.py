"""Top-level independent actions (§3.3), via the fig. 13(b) colouring.

The invoked action is structurally nested inside its invoker — so it can be
granted locks the invoker holds, avoiding the fig. 13(a) deadlock — but is
coloured with a single *fresh* colour.  Having no same-coloured ancestor it
behaves top-level: its commit is immediately permanent, and the invoker's
abort neither undoes it (no shared undo responsibility) nor kills it when
running asynchronously (colour-disjoint children are detached, not
aborted).

Synchronous invocation is just a ``with`` block (fig. 7(a)); asynchronous
invocation (:class:`AsyncIndependent`) runs the body in its own thread
(fig. 7(b)) and exposes the outcome for the invoker to consult, as the
paper suggests ("subsequent activities of A can be made to depend upon the
outcome of B").
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.actions.action import Action
from repro.actions.status import Outcome
from repro.runtime.context import current_action
from repro.runtime.scope import ActionScope

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import LocalRuntime


def independent_top_level(runtime: "LocalRuntime",
                          parent: Optional[Action] = None,
                          name: str = "independent",
                          use_ambient_parent: bool = True) -> ActionScope:
    """A synchronous top-level independent action (fig. 7(a)).

    ``parent`` defaults to the ambient action (that is the point of the
    structure: invoking a top-level action from *within* an action); pass
    ``use_ambient_parent=False`` for a plain top-level action.
    """
    resolved = parent if parent is not None else (
        current_action() if use_ambient_parent else None
    )
    colour = runtime.colours.fresh(f"{name}.colour")
    action = Action(runtime, [colour], parent=resolved, name=name)
    return ActionScope(runtime, action)


class AsyncIndependent:
    """An asynchronous top-level independent action (fig. 7(b)).

    ``body`` receives the new action and runs in a separate thread inside
    an action scope (clean return commits, exception aborts).  The invoker
    may continue immediately; :meth:`wait` joins and returns the outcome.
    """

    def __init__(self, runtime: "LocalRuntime",
                 body: Callable[[Action], Any],
                 parent: Optional[Action] = None,
                 name: str = "async-independent",
                 use_ambient_parent: bool = True):
        self.runtime = runtime
        resolved = parent if parent is not None else (
            current_action() if use_ambient_parent else None
        )
        colour = runtime.colours.fresh(f"{name}.colour")
        self.action = Action(runtime, [colour], parent=resolved, name=name)
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.outcome: Optional[Outcome] = None
        self._thread = threading.Thread(target=self._run, args=(body,), daemon=True)
        self._thread.start()

    def _run(self, body: Callable[[Action], Any]) -> None:
        scope = ActionScope(self.runtime, self.action)
        try:
            with scope:
                self.result = body(self.action)
        except BaseException as error:  # noqa: BLE001 - reported via .error
            self.error = error
        finally:
            self.outcome = scope.outcome

    def wait(self, timeout: Optional[float] = None) -> Optional[Outcome]:
        """Join the invoked action; returns its outcome (None on timeout)."""
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            return None
        return self.outcome

    @property
    def running(self) -> bool:
        return self._thread.is_alive()
