"""Action structures (§3), implemented uniformly with colours (§5).

The application builder "thinks in terms of the action structures … and the
colour assignments are generated automatically" (§6).  Offered here:

- :class:`SerializingAction` (§3.1, figs. 3/11) — constituents commit
  top-level (their effects survive), but all their locks are retained by
  the enclosing control action until it ends.
- :class:`GluedGroup` (§3.2, figs. 5/6/12) — each member is a top-level
  action; a chosen subset of objects is handed over, atomically pinned for
  the next member, while everything else is released at member commit.
- :func:`independent_top_level` / :class:`AsyncIndependent` (§3.3,
  figs. 7/13) — top-level actions invoked from within an action, committing
  or aborting independently of the invoker.
- :func:`independent_relative_to` (§5.6, figs. 14/15) — n-level independent
  actions: permanence decided at a designated ancestor.
- :class:`CompensationScope` (§3.4) — the paper's "further research" hook:
  compensating actions scheduled automatically when a governing action
  aborts after its constituents have committed.
"""

from repro.structures.serializing import SerializingAction
from repro.structures.glued import GluedGroup
from repro.structures.independent import AsyncIndependent, independent_top_level
from repro.structures.nlevel import independence_markers, independent_relative_to
from repro.structures.compensation import CompensationScope

__all__ = [
    "SerializingAction",
    "GluedGroup",
    "independent_top_level",
    "AsyncIndependent",
    "independence_markers",
    "independent_relative_to",
    "CompensationScope",
]
