"""Compensating actions (§3.4).

"Once a top-level action commits, its effects can only be 'undone' by
running one or more application specific compensating actions."  The paper
leaves mechanisms for this as further research; this module provides the
obvious one for the structures implemented here: register a compensator
alongside each committed piece of work, and if the *governing* action
(e.g. a serializing control action, or a bulletin-board poster's
application action) ends up aborting, run the compensators — each inside a
fresh top-level action, in reverse registration order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, TYPE_CHECKING

from repro.actions.action import Action
from repro.actions.status import Outcome

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import LocalRuntime

#: A compensator runs inside its own top-level action (passed in).
Compensator = Callable[[Action], None]


@dataclass
class CompensationRecord:
    description: str
    compensator: Compensator
    ran: bool = False
    outcome: Optional[Outcome] = None


class CompensationScope:
    """Run registered compensators if the governing action aborts."""

    def __init__(self, runtime: "LocalRuntime", governing: Action):
        self.runtime = runtime
        self.governing = governing
        self.records: List[CompensationRecord] = []
        governing.on_outcome(self._on_outcome)

    def register(self, description: str, compensator: Compensator) -> CompensationRecord:
        """Arm a compensator for one committed piece of work."""
        record = CompensationRecord(description, compensator)
        self.records.append(record)
        return record

    def discard(self, record: CompensationRecord) -> None:
        """Disarm a compensator (the work no longer needs compensating)."""
        if record in self.records:
            self.records.remove(record)

    def _on_outcome(self, _action: Action, outcome: Outcome) -> None:
        if outcome is Outcome.ABORTED:
            self.run_all()

    def run_all(self) -> List[CompensationRecord]:
        """Run all armed compensators (reverse order), each top-level.

        A compensator that raises marks its record ABORTED and the rest
        still run — compensation is best-effort per item, as each
        compensates an independently committed action.
        """
        pending, self.records = list(self.records), []
        for record in reversed(pending):
            scope = self.runtime.top_level(name=f"compensate:{record.description}")
            try:
                with scope as action:
                    record.compensator(action)
            except Exception:  # noqa: BLE001 - recorded, not propagated
                pass
            record.ran = True
            record.outcome = scope.outcome
        return list(reversed(pending))
