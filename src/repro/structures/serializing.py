"""Serializing actions (§3.1), via the fig. 11 colouring scheme.

A serializing action is "atomic with respect to concurrency but not with
respect to failures": its constituents are top-level actions (their effects
are permanent at their own commit), but every lock they take is retained by
the enclosing control action until it ends, so no outside action can
interpose between constituents.

Implementation: the control action A is coloured {control}; each
constituent is coloured {control, fresh-data} with ``companion_colour =
control`` — the runtime shadows every data-colour lock in the control
colour (WRITE/EXCLUSIVE_READ as EXCLUSIVE_READ, READ as READ), which is
exactly B's locking in fig. 11.  At constituent commit the data-coloured
effects become permanent and the control-coloured shadows are inherited by
A.  A performs no writes, so its abort undoes nothing — giving §3.1's three
possible outcomes.

A serializing action is the special case of glued actions in which *every*
accessed object is handed over (§3.2); the separate class keeps application
requirements expressible, as the paper recommends.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.actions.action import Action
from repro.actions.status import ActionStatus, Outcome
from repro.errors import InvalidActionState
from repro.runtime.context import current_action
from repro.runtime.scope import ActionScope

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import LocalRuntime


class SerializingAction:
    """The enclosing control action of fig. 3, with constituent factories."""

    def __init__(self, runtime: "LocalRuntime", parent: Optional[Action] = None,
                 name: str = "serializing", use_ambient_parent: bool = False):
        self.runtime = runtime
        self.name = name
        self.control_colour = runtime.colours.fresh(f"{name}.control")
        resolved = current_action() if (use_ambient_parent and parent is None) else parent
        self.control = Action(
            runtime, [self.control_colour], parent=resolved, name=f"{name}.A",
        )
        self._constituent_count = 0
        self.constituents: List[Action] = []

    def constituent(self, name: str = "") -> ActionScope:
        """Open the next constituent (B, C, ... of fig. 3).

        The returned scope commits the constituent on clean exit; its
        effects are then permanent even if the serializing action later
        aborts.
        """
        if self.control.status is not ActionStatus.ACTIVE:
            raise InvalidActionState(f"{self.name}: serializing action already closed")
        self._constituent_count += 1
        label = name or f"{self.name}.c{self._constituent_count}"
        data_colour = self.runtime.colours.fresh(f"{label}.data")
        action = Action(
            self.runtime, [self.control_colour, data_colour],
            parent=self.control, name=label,
        )
        action.default_colour = data_colour
        action.companion_colour = self.control_colour
        self.constituents.append(action)
        return ActionScope(self.runtime, action)

    def close(self) -> Outcome:
        """End the serializing action, releasing all retained locks."""
        return self.runtime.commit_action(self.control)

    def cancel(self) -> Outcome:
        """Abort the serializing action.

        Constituents that committed keep their effects (outcome (iii) of
        §3.1); an active constituent is aborted with it.
        """
        return self.runtime.abort_action(self.control)

    def __enter__(self) -> "SerializingAction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.control.status.terminated:
            return False
        if exc_type is None:
            self.close()
        else:
            self.cancel()
        return False
