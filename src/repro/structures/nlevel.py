"""N-level independent actions (§5.6, figs. 14/15).

A top-level independent action's permanence is decided by nobody; an
*n-level* independent action's permanence is decided by a designated
ancestor: in fig. 14, E (invoked from B) survives B's abort but is undone
if A aborts — E is independent *relative to A*.

Colour scheme (fig. 15): the anchor A possesses a dedicated *marker*
colour (blue) in addition to its working colours; E is coloured with just
the marker.  E's commit then routes its locks and undo records to A (the
closest blue ancestor), while B (red only) has no say.

Use :func:`independence_markers` when creating the anchor, then
:func:`independent_relative_to` at the invocation site.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.actions.action import Action
from repro.colours.colour import Colour
from repro.errors import ColourError
from repro.runtime.context import current_action
from repro.runtime.scope import ActionScope

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import LocalRuntime


def independence_markers(runtime: "LocalRuntime", count: int = 1,
                         name: str = "marker") -> List[Colour]:
    """Fresh colours to add to a prospective anchor action's colour set."""
    return [runtime.colours.fresh(f"{name}{i + 1}") for i in range(count)]


def independent_relative_to(runtime: "LocalRuntime", anchor: Action,
                            parent: Optional[Action] = None,
                            marker: Optional[Colour] = None,
                            name: str = "nlevel-independent") -> ActionScope:
    """An action, nested at the call site, whose fate is anchored at ``anchor``.

    ``parent`` defaults to the ambient action.  The marker colour is chosen
    automatically: a colour the anchor possesses that no action strictly
    between the parent and the anchor possesses (otherwise an intermediate
    would capture the commit routing).  Raises :class:`ColourError` when the
    anchor has no usable marker — create the anchor with
    :func:`independence_markers` colours added.
    """
    resolved = parent if parent is not None else current_action()
    if resolved is None:
        raise ColourError("independent_relative_to needs an invoking action")
    if anchor.uid not in resolved.path:
        raise ColourError(
            f"anchor {anchor.name} is not an ancestor of invoker {resolved.name}"
        )

    intermediates: List[Action] = []
    walker: Optional[Action] = resolved
    while walker is not None and walker.uid != anchor.uid:
        intermediates.append(walker)
        walker = walker.parent
    if walker is None:
        raise ColourError(
            f"anchor {anchor.name} unreachable from {resolved.name} via parent links"
        )

    taken = set()
    for intermediate in intermediates:
        taken |= intermediate.colours

    if marker is not None:
        if marker not in anchor.colours:
            raise ColourError(f"anchor {anchor.name} does not possess marker {marker}")
        if marker in taken:
            raise ColourError(
                f"marker {marker} is also held by an intermediate action; "
                f"commit routing would stop there"
            )
        chosen = marker
    else:
        candidates = sorted(anchor.colours - taken, key=lambda c: c.uid)
        if not candidates:
            raise ColourError(
                f"anchor {anchor.name} has no colour unused by intermediate actions; "
                f"create it with independence_markers(...) colours"
            )
        chosen = candidates[0]

    action = Action(runtime, [chosen], parent=resolved, name=name)
    return ActionScope(runtime, action)
