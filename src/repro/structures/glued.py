"""Glued actions (§3.2), via the fig. 12 colouring scheme.

A :class:`GluedGroup` owns a *control action* G in a fresh control colour.
Each member action is coloured {control, fresh-data} and runs nested inside
G; its ordinary work uses its data colour, so at member commit those
effects are **permanent** (no data-colour ancestor exists) and those locks
are **released** — except for objects the member *handed over*:
:meth:`MemberScope.hand_over` takes EXCLUSIVE_READ locks in the control
colour, which G inherits, keeping the objects pinned against outsiders
until the next member picks them up (or the group closes).

Members may run sequentially (fig. 5) or concurrently (fig. 6).  The
control action performs no writes, so aborting the group undoes nothing —
committed members' effects survive, exactly the §3.2 requirement.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.actions.action import Action
from repro.actions.status import ActionStatus, Outcome
from repro.errors import InvalidActionState
from repro.locking.modes import LockMode
from repro.runtime.context import current_action, pop_action, push_action

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.lockable import LockableObject
    from repro.runtime.runtime import LocalRuntime


class MemberScope:
    """Scope for one glued member; adds :meth:`hand_over` to the usual scope."""

    def __init__(self, group: "GluedGroup", action: Action):
        self.group = group
        self.action = action
        self.outcome: Optional[Outcome] = None

    def hand_over(self, *objects: "LockableObject") -> None:
        """Pin these objects for the next member (fig. 12's red locks on P).

        Must be called inside the member's ``with`` block, after (or
        instead of) working on the objects in the ordinary way.
        """
        for obj in objects:
            self.group.runtime.acquire(
                self.action, obj, LockMode.EXCLUSIVE_READ,
                colour=self.group.control_colour,
            )

    def __enter__(self) -> "MemberScope":
        push_action(self.action)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        pop_action(self.action)
        if self.action.status.terminated:
            self.outcome = (
                Outcome.COMMITTED
                if self.action.status is ActionStatus.COMMITTED
                else Outcome.ABORTED
            )
            return False
        if exc_type is None:
            self.outcome = self.group.runtime.commit_action(self.action)
        else:
            self.outcome = self.group.runtime.abort_action(self.action)
        return False


class GluedGroup:
    """A sequence (or concurrent set) of glued top-level actions."""

    def __init__(self, runtime: "LocalRuntime", parent: Optional[Action] = None,
                 name: str = "glued", use_ambient_parent: bool = False):
        self.runtime = runtime
        self.name = name
        self.control_colour = runtime.colours.fresh(f"{name}.control")
        resolved = current_action() if (use_ambient_parent and parent is None) else parent
        self.control = Action(
            runtime, [self.control_colour], parent=resolved, name=f"{name}.G",
        )
        self._member_count = 0
        self.members: List[Action] = []

    def member(self, name: str = "") -> MemberScope:
        """Open the next glued member action."""
        if self.control.status is not ActionStatus.ACTIVE:
            raise InvalidActionState(f"{self.name}: group already closed")
        self._member_count += 1
        label = name or f"{self.name}.A{self._member_count}"
        data_colour = self.runtime.colours.fresh(f"{label}.data")
        action = Action(
            self.runtime, [self.control_colour, data_colour],
            parent=self.control, name=label,
        )
        action.default_colour = data_colour
        self.members.append(action)
        return MemberScope(self, action)

    def close(self) -> Outcome:
        """Commit the control action: release every pinned object."""
        return self.runtime.commit_action(self.control)

    def cancel(self) -> Outcome:
        """Abort the control action.

        Committed members' effects are *not* undone (the control action
        wrote nothing); only the pins are dropped and any still-active
        member is aborted.
        """
        return self.runtime.abort_action(self.control)

    def __enter__(self) -> "GluedGroup":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.control.status.terminated:
            return False
        if exc_type is None:
            self.close()
        else:
            self.cancel()
        return False
