"""Bulletin board (§4(i)).

"Posting and retrieving information from bulletin boards can be performed
via synchronous or asynchronous top-level independent actions invoked from
applications structured as actions … if these actions are nested within
the actions of an application, then bulletin information can remain
inaccessible for long times."  And: "if the invoking action aborts it may
well be necessary to invoke a compensating top-level action".

The board is its own persistent object type (flat ``@operation`` methods,
so it is also cluster-servable).  ``post``/``read_all`` run as top-level
independent actions of the caller; ``post`` can arm a compensating retract
against a governing action.
"""

from __future__ import annotations

import itertools
from typing import Any, ClassVar, Dict, List, Optional

from repro.actions.action import Action
from repro.errors import ObjectNotFound
from repro.locking.modes import LockMode
from repro.objects.lockable import LockableObject, operation
from repro.objects.state import ObjectState
from repro.structures.compensation import CompensationScope
from repro.structures.independent import AsyncIndependent, independent_top_level


class BulletinBoard(LockableObject):
    """An append-only board of posts, each with a unique id."""

    type_name: ClassVar[str] = "bulletin_board"

    def __init__(self, runtime, name: str = "board", uid=None, persist: bool = True):
        self.name = name
        self.posts: List[Dict[str, Any]] = []
        self.next_id = 1
        super().__init__(runtime, uid=uid, persist=persist)

    def save_state(self, state: ObjectState) -> None:
        state.pack_string(self.name)
        state.pack_int(self.next_id)
        state.pack_value(self.posts)

    def restore_state(self, state: ObjectState) -> None:
        self.name = state.unpack_string()
        self.next_id = state.unpack_int()
        self.posts = state.unpack_value()

    # -- operations -------------------------------------------------------------

    @operation(LockMode.WRITE)
    def post(self, author: str, text: str) -> int:
        post_id = self.next_id
        self.next_id += 1
        self.posts.append({"id": post_id, "author": author, "text": text})
        return post_id

    @operation(LockMode.WRITE)
    def retract(self, post_id: int) -> bool:
        before = len(self.posts)
        self.posts = [p for p in self.posts if p["id"] != post_id]
        return len(self.posts) != before

    @operation(LockMode.READ)
    def read_all(self) -> List[Dict[str, Any]]:
        return [dict(p) for p in self.posts]

    @operation(LockMode.READ)
    def read_post(self, post_id: int) -> Dict[str, Any]:
        for post in self.posts:
            if post["id"] == post_id:
                return dict(post)
        raise ObjectNotFound(f"{self.name}: no post {post_id}")


class BulletinService:
    """The application-facing API: independent actions over a board."""

    def __init__(self, runtime, board: BulletinBoard):
        self.runtime = runtime
        self.board = board
        self._names = itertools.count(1)

    def post(self, author: str, text: str,
             governing: Optional[Action] = None,
             compensation: Optional[CompensationScope] = None) -> int:
        """Post now (top-level independent of any ambient action).

        With ``compensation`` (armed against ``governing`` or any action),
        the post is retracted automatically if that action later aborts —
        "consistent with the manner in which bulletin boards are used".
        """
        with independent_top_level(
            self.runtime, name=f"post-{next(self._names)}"
        ) as action:
            post_id = self.board.post(author, text, action=action)
        if compensation is not None:
            compensation.register(
                f"retract post {post_id}",
                lambda act, pid=post_id: self.board.retract(pid, action=act),
            )
        return post_id

    def post_async(self, author: str, text: str) -> AsyncIndependent:
        """Fire-and-forget posting (fig. 7(b))."""
        return AsyncIndependent(
            self.runtime,
            lambda action: self.board.post(author, text, action=action),
            name=f"post-async-{next(self._names)}",
        )

    def read_all(self) -> List[Dict[str, Any]]:
        """Read the board without holding up (or being held by) the caller's
        own locks any longer than the read itself."""
        with independent_top_level(self.runtime, name="read-board") as action:
            return self.board.read_all(action=action)
