"""Billing and accounting of resource usage (§4(iii)).

"If a service is accessed by an action and the user of the service is to
be charged, then the charging information should not be recovered if the
action aborts.  Top-level independent actions again provide the required
functionality."

:class:`MeteredService` wraps a service function: each call charges the
client's account in a top-level independent action *first*, then runs the
work under the caller's action.  If the caller's action subsequently
aborts, the work is undone but the charge stands — the provider billed for
the attempt.  A refund policy can be layered with a compensation scope.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from repro.stdobjects.account import Account
from repro.structures.compensation import CompensationScope
from repro.structures.independent import independent_top_level


class MeteredService:
    """A service whose every use is billed durably."""

    def __init__(self, runtime, name: str, fee: int,
                 provider_account: Optional[Account] = None):
        self.runtime = runtime
        self.name = name
        self.fee = fee
        self.provider_account = provider_account
        self.calls_billed = 0
        self._seq = itertools.count(1)

    def charge(self, customer: Account) -> int:
        """Bill one use, independent of any enclosing action's fate."""
        seq = next(self._seq)
        with independent_top_level(
            self.runtime, name=f"{self.name}.charge-{seq}"
        ) as action:
            customer.charge(self.fee, f"{self.name} call #{seq}", action=action)
            if self.provider_account is not None:
                self.provider_account.deposit(
                    self.fee, f"{self.name} revenue #{seq}", action=action
                )
        self.calls_billed += 1
        return seq

    def call(self, customer: Account, work: Callable[[], Any],
             refund_on_abort: Optional[CompensationScope] = None) -> Any:
        """Charge, then run ``work`` under the caller's (ambient) action.

        The charge is already permanent when the work begins; the caller's
        abort undoes the work only.  Pass ``refund_on_abort`` (a
        compensation scope on the governing action) to give the customer
        their money back when the governing action aborts — a policy
        choice, not recovery.
        """
        seq = self.charge(customer)
        if refund_on_abort is not None:
            refund_on_abort.register(
                f"refund {self.name} call #{seq}",
                lambda action, s=seq: customer.deposit(
                    self.fee, f"{self.name} refund #{s}", action=action
                ),
            )
        return work()
