"""The §4(v) meeting scheduler over the cluster: diaries on many nodes.

Same pairwise-gluing structure as the local scheduler — each round Ii runs
in its own control group Gi nested in G(i-1) — but the diary slots are
:class:`~repro.stdobjects.diary.DiarySlot` objects hosted on the
participants' own workstations, locks live on those object servers, and
each round's narrowing is made permanent by a two-phase commit across the
nodes whose slots it touched.  A client crash between rounds loses only
the current pins (volatile); every committed round survives in the
participants' stable stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps.meeting.scheduler import NoCommonDate, SchedulingRound
from repro.cluster.client import ClusterClient, ObjectRef
from repro.cluster.cluster import Cluster
from repro.cluster.structures import ClusterGluedGroup


@dataclass
class RemoteDiary:
    """One participant's slots: date -> ObjectRef, hosted on their node."""

    owner: str
    node: str
    slots: Dict[str, ObjectRef] = field(default_factory=dict)


class DistributedMeetingScheduler:
    """Glued scheduling rounds across diary servers."""

    def __init__(self, cluster: Cluster, client: ClusterClient):
        self.cluster = cluster
        self.client = client
        self.diaries: List[RemoteDiary] = []
        self.rounds: List[SchedulingRound] = []
        self.current_group: Optional[ClusterGluedGroup] = None

    # -- setup -------------------------------------------------------------------

    def create_diaries(self, people: Dict[str, str], dates: Sequence[str]):
        """Generator: one DiarySlot per (person, date) on the person's node."""
        for owner, node in sorted(people.items()):
            diary = RemoteDiary(owner=owner, node=node)
            for date in dates:
                ref = yield from self.client.create(
                    node, "diary_slot", owner, date
                )
                diary.slots[date] = ref
            self.diaries.append(diary)
        return self.diaries

    def _slots_for(self, date: str) -> List[ObjectRef]:
        return [diary.slots[date] for diary in self.diaries
                if date in diary.slots]

    # -- scheduling -----------------------------------------------------------------

    def schedule(self, description: str,
                 preferences: Sequence[Sequence[str]],
                 fail_after_round: Optional[int] = None):
        """Generator: run the rounds; returns the booked date.

        ``fail_after_round``: raise after that many narrowing rounds (the
        crash experiment); committed rounds stay permanent, and
        :meth:`release_pins` drops the surviving group's pins.
        """
        self.rounds = []
        group, candidates = yield from self._initial_round(description)
        try:
            for index, acceptable in enumerate(preferences, start=1):
                group, candidates = yield from self._narrowing_round(
                    group, index, candidates, set(acceptable)
                )
                if fail_after_round is not None and index >= fail_after_round:
                    self.current_group = group
                    raise SchedulerCrashRemote(f"crash after round {index}")
            if not candidates:
                raise NoCommonDate(description)
            chosen = candidates[0]
            yield from self._booking_round(group, chosen, description,
                                           candidates)
            self.current_group = None
            return chosen
        except SchedulerCrashRemote:
            raise
        except BaseException:
            if group is not None and not group.control.status.terminated:
                yield from group.cancel()
            self.current_group = None
            raise

    def release_pins(self):
        """Generator: drop the surviving group's pins after a crash."""
        if (self.current_group is not None
                and not self.current_group.control.status.terminated):
            yield from self.current_group.cancel()
        self.current_group = None

    # -- rounds --------------------------------------------------------------------------

    def _initial_round(self, description: str):
        group = ClusterGluedGroup(self.client, name=f"{description}.G1")
        member = group.member("I1")
        all_dates = sorted({date for diary in self.diaries
                            for date in diary.slots})

        def body():
            candidates = []
            for date in all_dates:
                slots = self._slots_for(date)
                if len(slots) != len(self.diaries):
                    continue
                free = True
                for ref in slots:
                    is_free = yield from self.client.invoke(
                        member, ref, "is_free"
                    )
                    free = free and is_free
                if free:
                    candidates.append(date)
            for date in candidates:
                yield from group.hand_over(member, *self._slots_for(date))
            return candidates

        candidates = yield from self.client.run_scope(member, body())
        self.rounds.append(SchedulingRound(
            index=0, examined=all_dates, kept=list(candidates),
            released=[d for d in all_dates if d not in candidates],
        ))
        return group, candidates

    def _narrowing_round(self, previous: ClusterGluedGroup, index: int,
                         candidates: List[str], acceptable: set):
        group = ClusterGluedGroup(
            self.client, parent=previous.control, name=f"G{index + 1}",
        )
        member = group.member(f"I{index + 1}")
        kept = [d for d in candidates if d in acceptable]

        def body():
            for date in kept:
                for ref in self._slots_for(date):
                    yield from self.client.invoke(member, ref, "is_free")
                yield from group.hand_over(member, *self._slots_for(date))

        yield from self.client.run_scope(member, body())
        yield from previous.close()  # rejected slots freed cluster-wide
        self.rounds.append(SchedulingRound(
            index=index, examined=list(candidates), kept=kept,
            released=[d for d in candidates if d not in acceptable],
        ))
        return group, kept

    def _booking_round(self, previous: ClusterGluedGroup, chosen: str,
                       description: str, candidates: List[str]):
        group = ClusterGluedGroup(self.client, parent=previous.control,
                                  name="Gn")
        member = group.member("In.book")

        def body():
            for ref in self._slots_for(chosen):
                yield from self.client.invoke(member, ref, "book", description)

        yield from self.client.run_scope(member, body())
        yield from previous.close()
        yield from group.close()
        self.rounds.append(SchedulingRound(
            index=len(self.rounds), examined=list(candidates), kept=[chosen],
            released=[d for d in candidates if d != chosen],
        ))


class SchedulerCrashRemote(RuntimeError):
    """Injected client failure between distributed rounds."""
