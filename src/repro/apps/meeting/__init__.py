"""Meeting scheduling over personal diaries with glued actions (§4(v), fig. 9)."""

from repro.apps.meeting.scheduler import MeetingScheduler, SchedulingRound

__all__ = ["MeetingScheduler", "SchedulingRound"]
