"""The §4(v) meeting scheduler.

"Glued actions are useful in structuring such applications, since locks on
diary entries can be passed from one top-level action to the other.
Action I1 locks all the relevant diary entries and selects some possible
slots.  Some time later, these slots are examined by I2 which narrows the
choice down … Each Ii is a top-level action, so its results survive
crashes; at the same time meeting slots not found acceptable are released."

Structure: the gluing is **pairwise** (figs. 6(b)/9): each round Ii runs
inside its own control group Gi (a fresh control colour); Ii hands its
*kept* slots to Gi, and the moment Ii commits, the previous group G(i-1)
is closed — releasing every slot Ii rejected, while Gi keeps the survivors
pinned.  Gi is nested inside G(i-1) so Ii can acquire the pinned slots;
being colour-disjoint, Gi detaches (rather than aborts) when G(i-1) ends.

Round model: round *i* consults participant *i*'s preferences and keeps
only dates that participant accepts.  The final round books the agreed
date in every diary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import InvalidActionState
from repro.stdobjects.diary import Diary, DiarySlot
from repro.structures.glued import GluedGroup


class NoCommonDate(InvalidActionState):
    """The participants' preferences have an empty intersection."""


class SchedulerCrash(RuntimeError):
    """Injected application failure between rounds."""


@dataclass
class SchedulingRound:
    """What one glued round did (for reporting and the fig. 9 benchmark)."""

    index: int
    examined: List[str]
    kept: List[str]
    released: List[str] = field(default_factory=list)


class MeetingScheduler:
    """Arrange a meeting date across several personal diaries."""

    def __init__(self, runtime, diaries: Sequence[Diary],
                 fail_after_round: Optional[int] = None):
        """``fail_after_round``: fault injection — the application crashes
        after that many completed narrowing rounds (committed rounds'
        results must survive; the pins of the last group are dropped)."""
        self.runtime = runtime
        self.diaries = list(diaries)
        self.fail_after_round = fail_after_round
        self.rounds: List[SchedulingRound] = []
        #: the control group still holding pins (exposed for experiments)
        self.current_group: Optional[GluedGroup] = None

    def _slots_for(self, date: str) -> List[DiarySlot]:
        return [diary.slot(date) for diary in self.diaries
                if date in diary.dates()]

    # -- public ------------------------------------------------------------------

    def schedule(self, description: str,
                 preferences: Sequence[Sequence[str]]) -> str:
        """Run the glued rounds; returns the booked date.

        ``preferences[i]`` is the set of dates acceptable to participant i,
        consulted in round i+1 (the broadcast-and-narrow of §4(v)).
        """
        self.rounds = []
        group: Optional[GluedGroup] = None
        try:
            group, candidates = self._initial_round(description)
            for index, acceptable in enumerate(preferences, start=1):
                group, candidates = self._narrowing_round(
                    group, index, candidates, set(acceptable)
                )
                if (self.fail_after_round is not None
                        and index >= self.fail_after_round):
                    raise SchedulerCrash(f"crash after round {index}")
            if not candidates:
                raise NoCommonDate(description)
            chosen = candidates[0]
            self._booking_round(group, chosen, description, candidates)
            group = None
            return chosen
        finally:
            self.current_group = group
            if group is not None and not group.control.status.terminated:
                if self.fail_after_round is None:
                    group.close()
                # on injected crash, leave the pins for the experiment to
                # inspect; release_pins() drops them.

    def release_pins(self) -> None:
        """Drop the surviving group's pins (post-crash cleanup)."""
        if (self.current_group is not None
                and not self.current_group.control.status.terminated):
            self.current_group.cancel()
        self.current_group = None

    # -- rounds -------------------------------------------------------------------

    def _initial_round(self, description: str):
        """I1 in G1: lock all relevant diary entries, keep the free dates."""
        group = GluedGroup(self.runtime, name=f"{description}.G1")
        all_dates = sorted({d for diary in self.diaries for d in diary.dates()})
        with group.member(name="I1") as member:
            candidates = []
            for date in all_dates:
                slots = self._slots_for(date)
                if len(slots) != len(self.diaries):
                    continue  # someone has no such slot at all
                if all(slot.is_free(action=member.action) for slot in slots):
                    candidates.append(date)
            for date in candidates:
                member.hand_over(*self._slots_for(date))
        self.rounds.append(SchedulingRound(
            index=0, examined=all_dates, kept=list(candidates),
            released=[d for d in all_dates if d not in candidates],
        ))
        return group, candidates

    def _narrowing_round(self, previous: GluedGroup, index: int,
                         candidates: List[str], acceptable: set):
        """Ii in Gi (inside G(i-1)): keep acceptable dates, release the rest.

        Closing G(i-1) right after Ii commits is what frees the rejected
        slots while the kept ones stay pinned by Gi.
        """
        group = GluedGroup(
            self.runtime, parent=previous.control,
            name=f"G{index + 1}",
        )
        kept = [d for d in candidates if d in acceptable]
        with group.member(name=f"I{index + 1}") as member:
            for date in kept:
                for slot in self._slots_for(date):
                    slot.is_free(action=member.action)  # re-examine
                member.hand_over(*self._slots_for(date))
        previous.close()  # rejected slots become free now
        self.rounds.append(SchedulingRound(
            index=index, examined=list(candidates),
            kept=kept, released=[d for d in candidates if d not in acceptable],
        ))
        return group, kept

    def _booking_round(self, previous: GluedGroup, chosen: str,
                       description: str, candidates: List[str]) -> None:
        """In: book the chosen date in every diary (permanent at commit)."""
        group = GluedGroup(
            self.runtime, parent=previous.control, name="Gn",
        )
        with group.member(name="In.book") as member:
            for slot in self._slots_for(chosen):
                slot.book(description, action=member.action)
        previous.close()
        group.close()
        self.rounds.append(SchedulingRound(
            index=len(self.rounds), examined=list(candidates),
            kept=[chosen],
            released=[d for d in candidates if d != chosen],
        ))
