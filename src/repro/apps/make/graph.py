"""The dependency graph derived from a makefile.

Make is recursive; the graph makes the recursion explicit: which targets a
goal transitively needs, which files are sources (no rule), cycle
detection, and the width of each level (the concurrency available to a
distributed make — requirement (i))."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.apps.make.makefile import Makefile, MakefileError


class DependencyGraph:
    """Targets, sources, and build ordering for one makefile."""

    def __init__(self, makefile: Makefile):
        self.makefile = makefile
        self._check_cycles()

    # -- queries --------------------------------------------------------------

    def is_target(self, name: str) -> bool:
        return self.makefile.rule(name) is not None

    def sources(self) -> Set[str]:
        """Files mentioned as prerequisites that no rule builds."""
        mentioned: Set[str] = set()
        for rule in self.makefile.rules.values():
            mentioned.update(rule.prerequisites)
        return {name for name in mentioned if not self.is_target(name)}

    def needed(self, goal: str) -> Set[str]:
        """All targets transitively needed to build ``goal`` (incl. goal)."""
        if not self.is_target(goal):
            raise MakefileError(f"no rule to make {goal!r}")
        found: Set[str] = set()
        stack = [goal]
        while stack:
            name = stack.pop()
            if name in found or not self.is_target(name):
                continue
            found.add(name)
            stack.extend(self.makefile.rules[name].prerequisites)
        return found

    def build_order(self, goal: str) -> List[str]:
        """Topological order of the targets needed for ``goal``."""
        needed = self.needed(goal)
        order: List[str] = []
        visited: Set[str] = set()

        def visit(name: str) -> None:
            if name in visited or name not in needed:
                return
            visited.add(name)
            for prereq in self.makefile.rules[name].prerequisites:
                if self.is_target(prereq):
                    visit(prereq)
            order.append(name)

        visit(goal)
        return order

    def levels(self, goal: str) -> List[List[str]]:
        """Targets grouped by dependency depth: every target in one level can
        build concurrently once the previous levels are done."""
        needed = self.needed(goal)
        depth: Dict[str, int] = {}

        def depth_of(name: str) -> int:
            if name in depth:
                return depth[name]
            rule = self.makefile.rule(name)
            prereq_targets = [p for p in rule.prerequisites if self.is_target(p)]
            value = 0 if not prereq_targets else 1 + max(
                depth_of(p) for p in prereq_targets
            )
            depth[name] = value
            return value

        for name in needed:
            depth_of(name)
        by_level: Dict[int, List[str]] = {}
        for name, level in depth.items():
            by_level.setdefault(level, []).append(name)
        return [sorted(by_level[level]) for level in sorted(by_level)]

    def max_concurrency(self, goal: str) -> int:
        """The widest level — the best possible build parallelism."""
        return max(len(level) for level in self.levels(goal))

    # -- internals --------------------------------------------------------------

    def _check_cycles(self) -> None:
        WHITE, GREY, BLACK = 0, 1, 2
        state: Dict[str, int] = {name: WHITE for name in self.makefile.rules}

        def visit(name: str, trail: List[str]) -> None:
            if not self.is_target(name):
                return
            if state[name] == GREY:
                cycle = trail[trail.index(name):] + [name]
                raise MakefileError("dependency cycle: " + " -> ".join(cycle))
            if state[name] == BLACK:
                return
            state[name] = GREY
            for prereq in self.makefile.rules[name].prerequisites:
                visit(prereq, trail + [name])
            state[name] = BLACK

        for name in self.makefile.rules:
            visit(name, [])
