"""Makefile parsing (the paper's subset, plus variables).

Grammar::

    # comment
    CC = cc                       # variable definition
    OBJS = Test0.o Test1.o
    target: prereq1 $(OBJS)       # $(VAR) expands in targets/prereqs/commands
    <tab-or-spaces> $(CC) -c prereq1

One target per rule; files without a rule are sources.  The paper's own
example parses to three rules (Test, Test0.o, Test1.o).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError


class MakefileError(ReproError):
    """Malformed makefile text."""


@dataclass
class Rule:
    """One dependency rule: target, prerequisites, rebuild commands."""

    target: str
    prerequisites: List[str] = field(default_factory=list)
    commands: List[str] = field(default_factory=list)


@dataclass
class Makefile:
    """An ordered set of rules; the first rule's target is the default goal."""

    rules: Dict[str, Rule] = field(default_factory=dict)
    default_goal: Optional[str] = None

    def rule(self, target: str) -> Optional[Rule]:
        return self.rules.get(target)

    def targets(self) -> List[str]:
        return list(self.rules)

    def add(self, rule: Rule) -> None:
        if rule.target in self.rules:
            raise MakefileError(f"duplicate rule for target {rule.target!r}")
        self.rules[rule.target] = rule
        if self.default_goal is None:
            self.default_goal = rule.target


_VARIABLE_PATTERN = re.compile(r"\$\(([A-Za-z_][A-Za-z0-9_]*)\)")
_DEFINITION_PATTERN = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*=\s*(.*)$")


def _expand(text: str, variables: Dict[str, str], line_no: int,
            depth: int = 0) -> str:
    """Substitute $(VAR) references, recursively, with a cycle bound."""
    if depth > 16:
        raise MakefileError(f"line {line_no}: variable expansion too deep "
                            f"(circular definition?)")

    def replace(match: "re.Match") -> str:
        name = match.group(1)
        if name not in variables:
            raise MakefileError(f"line {line_no}: undefined variable $({name})")
        return variables[name]

    expanded = _VARIABLE_PATTERN.sub(replace, text)
    if _VARIABLE_PATTERN.search(expanded):
        return _expand(expanded, variables, line_no, depth + 1)
    return expanded


def parse_makefile(text: str) -> Makefile:
    """Parse makefile text into a :class:`Makefile`."""
    makefile = Makefile()
    variables: Dict[str, str] = {}
    current: Optional[Rule] = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if line[0] in (" ", "\t"):
            if current is None:
                raise MakefileError(
                    f"line {line_no}: command outside any rule: {stripped!r}"
                )
            current.commands.append(_expand(stripped, variables, line_no))
            continue
        definition = _DEFINITION_PATTERN.match(stripped)
        if definition is not None and ":" not in definition.group(1):
            name, value = definition.group(1), definition.group(2).strip()
            variables[name] = _expand(value, variables, line_no)
            continue
        if ":" not in line:
            raise MakefileError(f"line {line_no}: expected 'target: prereqs'")
        target_part, _, prereq_part = line.partition(":")
        target = _expand(target_part.strip(), variables, line_no)
        if not target or " " in target:
            raise MakefileError(f"line {line_no}: bad target {target_part!r}")
        prereqs = _expand(prereq_part, variables, line_no).split()
        current = Rule(target=target, prerequisites=prereqs)
        makefile.add(current)
    if not makefile.rules:
        raise MakefileError("empty makefile")
    return makefile


#: The paper's example makefile, verbatim (§4(iv)).
PAPER_EXAMPLE = """\
Test: Test0.o Test1.o
\tcc -o Test Test0.o Test1.o
Test0.o: Test0.h Test1.h Test0.c
\tcc -c Test0.c
Test1.o: Test1.h Test1.c
\tcc -c Test1.c
"""
