"""Fault-tolerant (distributed) make (§4(iv), fig. 8).

The paper's three requirements:

(i)   exploit the concurrency available (prerequisites build in parallel);
(ii)  proper concurrency control (the files a make is using are not
      manipulated by other programs meanwhile);
(iii) fault tolerance: if make fails, files already made consistent remain
      so — no reason to undo completed work.

(ii) + (iii) are exactly a serializing action per target: the timestamp
comparison and the command execution run as constituents (permanent at
their own commit), while the enclosing control action retains the locks.
"""

from repro.apps.make.makefile import Makefile, Rule, parse_makefile
from repro.apps.make.graph import DependencyGraph
from repro.apps.make.engine import LocalMakeEngine, MakeReport, SimulatedCompiler
from repro.apps.make.distributed import DistributedMakeEngine

__all__ = [
    "Makefile",
    "Rule",
    "parse_makefile",
    "DependencyGraph",
    "LocalMakeEngine",
    "SimulatedCompiler",
    "MakeReport",
    "DistributedMakeEngine",
]
