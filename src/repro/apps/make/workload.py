"""Synthetic make workloads: random dependency DAGs for scalability runs.

The paper's example has three targets; measuring *how* concurrency scales
needs bigger projects.  :func:`generate_project` builds a layered random
DAG (sources at the bottom, one final goal at the top) with a controlled
width — the knob the fig. 8 scalability benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.make.makefile import Makefile, Rule
from repro.util.rng import SplitRandom


@dataclass
class SyntheticProject:
    """A generated makefile plus its source contents and a placement."""

    makefile: Makefile
    sources: Dict[str, str]
    placement: Dict[str, str]

    @property
    def target_count(self) -> int:
        return len(self.makefile.rules)


def generate_project(seed: int, layers: int, width: int,
                     fan_in: int, nodes: List[str]) -> SyntheticProject:
    """A layered project: ``layers`` levels of ``width`` targets each.

    Every target depends on ``fan_in`` items from the layer below (sources
    below layer 0); a final goal depends on the whole top layer.  Files are
    placed round-robin across ``nodes``.
    """
    rng = SplitRandom(seed).split("make-workload")
    makefile = Makefile()
    sources: Dict[str, str] = {}
    placement: Dict[str, str] = {}
    placed = 0

    def place(name: str) -> None:
        nonlocal placed
        placement[name] = nodes[placed % len(nodes)]
        placed += 1

    source_names = [f"src{i}.c" for i in range(width)]
    for name in source_names:
        sources[name] = f"/* {name} */"
        place(name)

    below = source_names
    for layer in range(layers):
        current = []
        for index in range(width):
            name = f"L{layer}_{index}.o"
            deps = sorted(rng.sample(below, min(fan_in, len(below))))
            makefile.add(Rule(target=name, prerequisites=deps,
                              commands=[f"cc -o {name} " + " ".join(deps)]))
            place(name)
            current.append(name)
        below = current

    makefile.add(Rule(target="goal", prerequisites=list(below),
                      commands=["ld -o goal " + " ".join(below)]))
    place("goal")
    return SyntheticProject(makefile=makefile, sources=sources,
                            placement=placement)
