"""Distributed make over the cluster simulator (fig. 8).

Files live as :class:`FileObject` instances on (possibly many) nodes;
prerequisite targets are built **concurrently** as separate simulation
processes (requirement (i)); each target's check-and-rebuild runs under a
distributed serializing action (requirements (ii) and (iii)): the timestamp
comparison and the command execution commit top-level (permanent in the
hosting nodes' stable stores at constituent commit), while the control
action's retained locks stop other programs touching the files mid-make.

Compilation cost is simulated time (``compile_duration``), so the speedup
from concurrent building is directly measurable as makespan.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.make.engine import MakeFailure, MakeReport, SimulatedCompiler
from repro.apps.make.graph import DependencyGraph
from repro.apps.make.makefile import Makefile
from repro.cluster.client import ClusterClient, ObjectRef
from repro.cluster.cluster import Cluster
from repro.cluster.structures import ClusterSerializingAction
from repro.sim.kernel import Timeout, all_of


class DistributedMakeEngine:
    """Concurrent, fault-tolerant make across simulated nodes."""

    def __init__(self, cluster: Cluster, client: ClusterClient,
                 makefile: Makefile, placement: Dict[str, str],
                 compile_duration: float = 20.0,
                 fail_before: Optional[str] = None,
                 build_retries: int = 2,
                 retry_pause: float = 30.0):
        """``placement``: file name -> node hosting its FileObject.

        ``build_retries``: how many times to retry one target's
        check-and-rebuild after a transient failure (a file server crashed
        mid-build and the action aborted).  Combined with constituents'
        permanence this is the full requirement-(iii) story: committed
        targets stay, the interrupted one is redone once its server is
        back.
        """
        self.cluster = cluster
        self.client = client
        self.kernel = cluster.kernel
        self.makefile = makefile
        self.graph = DependencyGraph(makefile)
        self.placement = dict(placement)
        self.compile_duration = compile_duration
        self.fail_before = fail_before
        self.build_retries = build_retries
        self.retry_pause = retry_pause
        self.refs: Dict[str, ObjectRef] = {}
        self._building: Dict[str, object] = {}  # target -> Process

    # -- setup -------------------------------------------------------------------

    def setup(self, sources: Dict[str, str]):
        """Generator: create every file object on its placed node.

        Sources get timestamp 1.0 and their content; targets start absent
        (timestamp 0.0, empty) so everything is initially out of date.
        """
        names = set(self.placement)
        for name in sorted(names):
            if name in sources:
                ref = yield from self.client.create(
                    self.placement[name], "file",
                    name=name, content=sources[name], timestamp=1.0,
                )
            else:
                ref = yield from self.client.create(
                    self.placement[name], "file",
                    name=name, content="", timestamp=0.0,
                )
            self.refs[name] = ref
        return self.refs

    def touch_source(self, name: str):
        """Generator: bump a source file's timestamp (forces rebuilds)."""
        action = self.client.top_level(f"touch:{name}")
        def body():
            yield from self.client.invoke(
                action, self.refs[name], "touch", self.kernel.now + 1.0
            )
        return self.client.run_scope(action, body())

    # -- building ------------------------------------------------------------------

    def make(self, goal: Optional[str] = None):
        """Generator: build ``goal``; returns a :class:`MakeReport`."""
        goal = goal or self.makefile.default_goal
        report = MakeReport(goal=goal)
        self._building = {}
        try:
            yield from self._make_target(goal, report)
        except MakeFailure:
            pass
        return report

    def _make_target(self, target: str, report: MakeReport):
        rule = self.makefile.rule(target)
        if rule is None:
            return  # source file
        # phase (i): prerequisites concurrently, deduplicated across parents
        prereq_targets = [p for p in rule.prerequisites if self.graph.is_target(p)]
        handles = []
        for prereq in prereq_targets:
            handle = self._building.get(prereq)
            if handle is None:
                handle = self.kernel.spawn(
                    self._make_target(prereq, report), name=f"make:{prereq}"
                )
                self._building[prereq] = handle
            handles.append(handle)
        if handles:
            yield all_of(self.kernel, [h.join() for h in handles])
        if self.fail_before == target:
            report.failed_at = target
            raise MakeFailure(target)
        # phases (ii)-(iv) under a distributed serializing action; a crash
        # of an involved file server aborts the attempt, and we retry once
        # the world has settled.
        last_error: Optional[BaseException] = None
        for attempt in range(self.build_retries + 1):
            if attempt > 0:
                yield Timeout(self.retry_pause)
            try:
                yield from self._build_once(target, rule, report)
                return
            except MakeFailure:
                raise
            except Exception as error:  # transient: crashed server, timeout
                last_error = error
        report.failed_at = target
        raise MakeFailure(
            f"{target}: {self.build_retries + 1} attempts failed "
            f"(last: {last_error})"
        )

    def _build_once(self, target: str, rule, report: MakeReport):
        ser = ClusterSerializingAction(self.client, name=f"make:{target}")
        try:
            check = ser.constituent(f"stat:{target}")

            def stat_body():
                stamps = []
                for prereq in rule.prerequisites:
                    stamp = yield from self.client.invoke(
                        check, self.refs[prereq], "stat"
                    )
                    stamps.append(stamp)
                own = yield from self.client.invoke(
                    check, self.refs[target], "stat"
                )
                return any(s >= own for s in stamps)

            needs_rebuild = yield from ser.run_constituent(check, stat_body())
            if not needs_rebuild:
                report.up_to_date.append(target)
                return
            build = ser.constituent(f"build:{target}")

            def build_body():
                inputs = {}
                for prereq in rule.prerequisites:
                    content = yield from self.client.invoke(
                        build, self.refs[prereq], "read"
                    )
                    inputs[prereq] = content
                yield Timeout(self.compile_duration)  # the cc run
                stamp = self.kernel.now
                content = SimulatedCompiler(rule, inputs, stamp)
                yield from self.client.invoke(
                    build, self.refs[target], "write", content, stamp
                )

            yield from ser.run_constituent(build, build_body())
            report.rebuilt.append(target)
        finally:
            if not ser.control.status.terminated:
                yield from ser.close()

    # -- verification helpers ----------------------------------------------------------

    def stable_timestamp(self, name: str) -> float:
        """Read a file's committed timestamp straight from its node's stable
        store (crash-survival checks)."""
        from repro.objects.state import ObjectState
        node = self.cluster.nodes[self.placement[name]]
        stored = node.stable_store.read_committed(self.refs[name].uid)
        state = ObjectState.from_bytes(stored.payload)
        state.unpack_string()   # name
        state.unpack_string()   # content
        return state.unpack_float()

    def consistent_targets(self) -> List[str]:
        """Targets whose committed timestamp beats all their prerequisites'."""
        consistent = []
        for target, rule in self.makefile.rules.items():
            if target not in self.refs:
                continue
            own = self.stable_timestamp(target)
            if own > 0 and all(
                self.stable_timestamp(p) < own for p in rule.prerequisites
            ):
                consistent.append(target)
        return sorted(consistent)
