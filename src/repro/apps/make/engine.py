"""Local make engine: the paper's four phases under serializing actions.

Phases per target (§4(iv)): (i) ensure prerequisites are consistent —
recursive; (ii) obtain prerequisite timestamps; (iii) obtain the target's
timestamp; (iv) execute the rebuild commands if necessary.  "The last three
phases can be performed as one or more atomic actions, enclosed by a
serializing action" — here: one constituent comparing timestamps, one
executing the command, enclosed in a :class:`SerializingAction` per target
(fig. 8).  A target made consistent stays consistent even if the overall
make later fails (requirement (iii)).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.apps.make.graph import DependencyGraph
from repro.apps.make.makefile import Makefile, MakefileError, Rule
from repro.stdobjects.file import FileObject
from repro.structures.serializing import SerializingAction


class LogicalClock:
    """Monotonic timestamps for file modifications."""

    def __init__(self, start: float = 1.0):
        self._now = float(start)

    def next(self) -> float:
        self._now += 1.0
        return self._now

    @property
    def now(self) -> float:
        return self._now


#: compiler(rule, inputs: name->content, timestamp) -> new target content
Compiler = Callable[[Rule, Dict[str, str], float], str]


def SimulatedCompiler(rule: Rule, inputs: Dict[str, str], timestamp: float) -> str:
    """Deterministic stand-in for cc: content derived from the inputs."""
    digest = ",".join(
        f"{name}@{zlib.crc32(content.encode('utf-8')) & 0xFFFF:04x}"
        for name, content in sorted(inputs.items())
    )
    commands = "; ".join(rule.commands)
    return f"[{rule.target} <- {digest} via {commands!r} at {timestamp}]"


@dataclass
class MakeReport:
    """What a make run did."""

    goal: str
    rebuilt: List[str] = field(default_factory=list)
    up_to_date: List[str] = field(default_factory=list)
    failed_at: Optional[str] = None

    @property
    def completed(self) -> bool:
        return self.failed_at is None


class LocalMakeEngine:
    """Single-process make over FileObjects in a LocalRuntime."""

    def __init__(self, runtime, makefile: Makefile,
                 files: Dict[str, FileObject],
                 clock: Optional[LogicalClock] = None,
                 compiler: Compiler = SimulatedCompiler,
                 fail_before: Optional[str] = None):
        """``fail_before``: fault injection — raise just before rebuilding
        that target (for the requirement-(iii) experiments)."""
        self.runtime = runtime
        self.makefile = makefile
        self.graph = DependencyGraph(makefile)
        self.files = files
        self.clock = clock or LogicalClock()
        self.compiler = compiler
        self.fail_before = fail_before

    def _file(self, name: str) -> FileObject:
        try:
            return self.files[name]
        except KeyError:
            raise MakefileError(f"missing file object for {name!r}") from None

    def make(self, goal: Optional[str] = None) -> MakeReport:
        """Make ``goal`` (default: the makefile's first target)."""
        goal = goal or self.makefile.default_goal
        report = MakeReport(goal=goal)
        try:
            self._make_target(goal, report)
        except MakeFailure:
            pass
        return report

    # -- internals -----------------------------------------------------------------

    def _make_target(self, target: str, report: MakeReport) -> None:
        rule = self.makefile.rule(target)
        if rule is None:
            return  # a source file: nothing to make
        # phase (i): make prerequisites consistent first (recursively)
        for prereq in rule.prerequisites:
            self._make_target(prereq, report)
        if self.fail_before == target:
            report.failed_at = target
            raise MakeFailure(target)
        with SerializingAction(self.runtime, name=f"make:{target}") as ser:
            # phases (ii)+(iii): read timestamps under one constituent
            with ser.constituent(name=f"stat:{target}") as check:
                prereq_stamps = [
                    self._file(p).stat(action=check) for p in rule.prerequisites
                ]
                target_stamp = self._file(target).stat(action=check)
                needs_rebuild = any(s >= target_stamp for s in prereq_stamps)
            if not needs_rebuild:
                report.up_to_date.append(target)
                return
            # phase (iv): execute the commands as the second constituent
            with ser.constituent(name=f"build:{target}") as build:
                inputs = {
                    p: self._file(p).read(action=build)
                    for p in rule.prerequisites
                }
                stamp = self.clock.next()
                content = self.compiler(rule, inputs, stamp)
                self._file(target).write(content, stamp, action=build)
            report.rebuilt.append(target)


class MakeFailure(MakefileError):
    """Injected failure during a make run."""
