"""The paper's example applications (§4), built on the structures layer.

- :mod:`repro.apps.bulletin` — bulletin board via top-level independent
  actions (+ compensation), §4(i).
- :mod:`repro.apps.billing` — charging resource usage that survives the
  client action's abort, §4(iii).
- :mod:`repro.apps.make` — fault-tolerant distributed make with
  serializing actions, §4(iv) / fig. 8.
- :mod:`repro.apps.meeting` — meeting scheduling over personal diaries with
  glued actions, §4(v) / fig. 9.

(Name-server access, §4(ii), lives in :mod:`repro.replication.nameserver`.)
"""
