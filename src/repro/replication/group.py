"""Read-one/write-all replica groups over the cluster.

A :class:`ReplicaGroup` wraps one logical object whose state lives on
several nodes.  Operation dispatch uses the class registry's declared lock
mode: READ operations go to the first replica that answers; WRITE
operations are applied to **every** replica within the same action — the
action's locks and two-phase commit then guarantee that either all copies
change or none do (mutual consistency).

Write-all is strict: one unreachable replica fails the write (and the
caller's action should abort).  That is the classic availability trade-off
of ROWA; the replicated name server accepts it because name-server writes
are rare and reads are what must stay available.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.cluster.client import ClusterAction, ClusterClient, ObjectRef
from repro.errors import ClusterError, RpcTimeout
from repro.locking.modes import LockMode


class ReplicaGroup:
    """One logical object, replicated across nodes."""

    def __init__(self, client: ClusterClient, replicas: Sequence[ObjectRef]):
        if not replicas:
            raise ClusterError("a replica group needs at least one replica")
        types = {ref.type_name for ref in replicas}
        if len(types) != 1:
            raise ClusterError(f"replicas disagree on type: {types}")
        self.client = client
        self.replicas: List[ObjectRef] = list(replicas)
        self.type_name = replicas[0].type_name

    @classmethod
    def create(cls, client: ClusterClient, nodes: Sequence[str],
               type_name: str, *args: Any, **kwargs: Any):
        """Generator: create one replica per node; returns the group."""
        replicas = []
        for node_name in nodes:
            ref = yield from client.create(node_name, type_name, *args, **kwargs)
            replicas.append(ref)
        return cls(client, replicas)

    def invoke(self, action: ClusterAction, method: str, *args: Any,
               colour=None):
        """Generator: run an operation with read-one/write-all dispatch."""
        mode = self.client._operation_mode(self.type_name, method)
        if mode is LockMode.READ:
            return (yield from self._read_one(action, method, args, colour))
        return (yield from self._write_all(action, method, args, colour))

    def _read_one(self, action: ClusterAction, method: str, args, colour):
        """Each attempt runs in a nested sub-action: a dead replica aborts
        only the attempt (cleaning any stranded lock), and the survivor's
        read commits up into the caller's action."""
        last_error: Exception = ClusterError("no replicas")
        for ref in self.replicas:
            attempt = self.client.atomic(action, name=f"read@{ref.node}")
            try:
                result = yield from self.client.invoke(
                    attempt, ref, method, *args, colour=colour
                )
            except RpcTimeout as error:
                last_error = error  # `invoke` aborted the attempt already
                continue
            yield from self.client.commit(attempt)
            return result
        raise last_error

    def _write_all(self, action: ClusterAction, method: str, args, colour):
        result: Any = None
        for ref in self.replicas:
            result = yield from self.client.invoke(
                action, ref, method, *args, colour=colour
            )
        return result

    def available_replicas(self) -> List[ObjectRef]:
        """Replicas on currently-up nodes (observability for experiments)."""
        network = self.client.node.network
        return [
            ref for ref in self.replicas
            if network.is_reachable(self.client.node.name, ref.node)
        ]

    # -- available-copies recovery ------------------------------------------------

    def resync(self, stale: ObjectRef, source: Optional[ObjectRef] = None):
        """Generator: copy a current replica's state onto a stale one.

        Available-copies operation (a write proceeded while ``stale``'s
        node was down) leaves that replica behind; after the node restarts
        it must be brought up to date *before* it serves reads again.  The
        copy runs inside one action: write-lock the stale copy, read a
        source copy, install, commit — so the resync is itself atomic and
        ordered with ongoing writes.
        """
        if stale not in self.replicas:
            raise ClusterError(f"{stale} is not a replica of this group")
        donors = [ref for ref in self.replicas if ref != stale]
        if source is not None:
            donors = [source]
        action = self.client.top_level(f"resync:{stale.node}")
        try:
            fresh_state = None
            for donor in donors:
                attempt = self.client.atomic(action, name=f"fetch@{donor.node}")
                try:
                    fresh_state = yield from self.client.invoke(
                        attempt, donor, "get"
                    )
                except RpcTimeout:
                    continue
                yield from self.client.commit(attempt)
                break
            if fresh_state is None:
                raise ClusterError("no reachable donor replica for resync")
            yield from self.client.invoke(action, stale, "set", fresh_state)
            yield from self.client.commit(action)
            return fresh_state
        except BaseException:
            if not action.status.terminated:
                yield from self.client.abort(action)
            raise

    def write_available(self, action: ClusterAction, method: str, *args: Any,
                        colour=None):
        """Generator: available-copies write — skip unreachable replicas.

        Returns (result, missed) where ``missed`` lists the replicas that
        did not receive the write and must be :meth:`resync`'d before they
        serve again.  Trades ROWA's write availability for a recovery
        obligation; the caller owns that obligation.
        """
        mode = self.client._operation_mode(self.type_name, method)
        if mode is LockMode.READ:
            raise ClusterError("write_available is for updating operations")
        network = self.client.node.network
        result: Any = None
        missed: List[ObjectRef] = []
        wrote_any = False
        for ref in self.replicas:
            if not network.is_reachable(self.client.node.name, ref.node):
                missed.append(ref)
                continue
            result = yield from self.client.invoke(
                action, ref, method, *args, colour=colour
            )
            wrote_any = True
        if not wrote_any:
            raise ClusterError("no replica available for the write")
        return result, missed
