"""The replicated name server (§4(ii)).

"For the sake of availability and consistency it is desirable that a name
server be replicated and operations on it (such as add, delete, lookup)
structured as atomic actions.  Such atomic actions can be invoked as
top-level independent actions from within distributed applications."

The server state is one :class:`~repro.stdobjects.register.Register` per
replica node, holding the name->value mapping; a :class:`ReplicaGroup`
keeps the copies mutually consistent.  Every public operation runs as a
**top-level independent action** when invoked with an invoking action (so
an application's abort never undoes a name-server update — the paper's
explicit point) or as a plain top-level action otherwise.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.cluster.client import ClusterAction, ClusterClient
from repro.errors import NameNotBound
from repro.replication.group import ReplicaGroup


class ReplicatedNameServer:
    """bind/lookup/unbind over replicated registers."""

    def __init__(self, client: ClusterClient, group: ReplicaGroup):
        self.client = client
        self.group = group

    @classmethod
    def create(cls, client: ClusterClient, nodes: Sequence[str]):
        """Generator: set up empty replicas on ``nodes``."""
        group = yield from ReplicaGroup.create(
            client, nodes, "register", value={}
        )
        return cls(client, group)

    def _action(self, invoker: Optional[ClusterAction], name: str) -> ClusterAction:
        if invoker is not None:
            return self.client.independent_top_level(invoker, name=name)
        return self.client.top_level(name)

    # -- operations (generators) ------------------------------------------------

    def bind(self, name: str, value: Any,
             invoker: Optional[ClusterAction] = None):
        """Bind (or rebind) a name on all replicas, atomically."""
        action = self._action(invoker, f"ns.bind:{name}")
        def body():
            mapping = yield from self.group.invoke(action, "get")
            mapping = dict(mapping)
            mapping[name] = value
            yield from self.group.invoke(action, "set", mapping)
        return self.client.run_scope(action, body())

    def unbind(self, name: str, invoker: Optional[ClusterAction] = None):
        action = self._action(invoker, f"ns.unbind:{name}")
        def body():
            mapping = yield from self.group.invoke(action, "get")
            mapping = dict(mapping)
            removed = mapping.pop(name, None) is not None
            if removed:
                yield from self.group.invoke(action, "set", mapping)
            return removed
        return self.client.run_scope(action, body())

    def lookup(self, name: str, invoker: Optional[ClusterAction] = None):
        """Read from the first available replica."""
        action = self._action(invoker, f"ns.lookup:{name}")
        def body():
            mapping = yield from self.group.invoke(action, "get")
            if name not in mapping:
                raise NameNotBound(name)
            return mapping[name]
        return self.client.run_scope(action, body())

    def names(self, invoker: Optional[ClusterAction] = None):
        action = self._action(invoker, "ns.names")
        def body():
            mapping = yield from self.group.invoke(action, "get")
            return sorted(mapping)
        return self.client.run_scope(action, body())
