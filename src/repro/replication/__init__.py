"""Object replication (§2) and the replicated name server (§4(ii)).

Availability "can be increased by replicating [objects] and storing them in
more than one object store", managed through a replica-consistency
protocol.  Here that protocol is read-one/write-all layered on the action
machinery: writes lock and update every replica inside the acting action
(so a commit 2PCs across all hosting nodes, keeping copies mutually
consistent), and reads are served by the first reachable replica.
"""

from repro.replication.group import ReplicaGroup
from repro.replication.nameserver import ReplicatedNameServer

__all__ = ["ReplicaGroup", "ReplicatedNameServer"]
