"""Colours — the attribute the paper attaches to actions and locks (§5).

A :class:`Colour` is an opaque identity.  A coloured action possesses a
static set of colours; every lock it takes is taken *in* exactly one of its
colours.  The commit rules route each colour's locks and undo responsibility
to the closest ancestor of that colour, which is what lets one mechanism
implement serializing, glued, and independent actions uniformly.
"""

from repro.colours.colour import Colour, ColourAllocator, colour_set

__all__ = ["Colour", "ColourAllocator", "colour_set"]
