"""Colour identities and allocation.

The paper assumes colours are assigned to actions *statically* (§5.1).  The
structures layer (``repro.structures``) allocates fresh colours per structure
instance via a :class:`ColourAllocator`, implementing §6's "generate colour
assignments automatically".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Union

from repro.util.uid import Uid, UidGenerator


@dataclass(frozen=True, order=True)
class Colour:
    """An immutable colour identity.

    Two colours are the same colour iff their uids are equal; the ``name``
    is a human label only (the paper's "red"/"blue"/"green") and may repeat
    across distinct colours.
    """

    uid: Uid
    name: str = ""

    def __str__(self) -> str:
        return self.name or str(self.uid)


class ColourAllocator:
    """Hands out fresh colours.

    One allocator per runtime; colour identity is scoped to the runtime, as
    actions never span runtimes.
    """

    def __init__(self, namespace: str = "colour"):
        self._uids = UidGenerator(namespace)

    def fresh(self, name: str = "") -> Colour:
        """Return a colour distinct from every previously allocated one."""
        uid = self._uids.fresh()
        return Colour(uid, name or f"c{uid.sequence}")


ColourLike = Union[Colour, Iterable[Colour]]


def colour_set(colours: ColourLike) -> FrozenSet[Colour]:
    """Normalise a single colour or an iterable of colours to a frozenset."""
    if isinstance(colours, Colour):
        return frozenset((colours,))
    return frozenset(colours)
