"""repro — multi-coloured actions for fault-tolerant distributed applications.

A full reproduction of Shrivastava & Wheater, "Implementing Fault-Tolerant
Distributed Applications Using Objects and Multi-Coloured Actions"
(ICDCS 1990): nested atomic actions over persistent objects, the coloured
locking rules, the serializing / glued / (n-level) independent action
structures with automatic colour assignment, a deterministic cluster
simulator with two-phase commit and crash recovery, object replication,
and the paper's example applications (distributed make, meeting
scheduling, bulletin boards, billing, name service).

Quickstart::

    from repro import LocalRuntime, Counter

    runtime = LocalRuntime()
    counter = Counter(runtime, value=0)
    with runtime.top_level():
        counter.increment(5)       # committed and stable
    assert counter.value == 5

See README.md for the architecture tour, DESIGN.md for the paper mapping,
and EXPERIMENTS.md for the per-figure reproduction record.
"""

from repro.actions.action import Action
from repro.actions.status import ActionStatus, Outcome
from repro.colours.colour import Colour, ColourAllocator
from repro.errors import (
    ActionAborted,
    ColourError,
    CommitError,
    DeadlockDetected,
    InvalidActionState,
    LockRefused,
    LockTimeout,
    NoCurrentAction,
    ObjectNotFound,
    ReproError,
    RpcTimeout,
)
from repro.locking.modes import LockMode
from repro.objects.lockable import LockableObject, operation
from repro.objects.state import ObjectState
from repro.objects.state_manager import StateManager
from repro.runtime.context import current_action
from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import (
    Account,
    CommutingCounter,
    Counter,
    Diary,
    DiarySlot,
    Directory,
    FifoQueue,
    FileObject,
    Register,
)
from repro.structures import (
    AsyncIndependent,
    CompensationScope,
    GluedGroup,
    SerializingAction,
    independence_markers,
    independent_relative_to,
    independent_top_level,
)

__version__ = "1.0.0"

__all__ = [
    # runtime and actions
    "LocalRuntime",
    "Action",
    "ActionStatus",
    "Outcome",
    "current_action",
    "Colour",
    "ColourAllocator",
    "LockMode",
    # objects
    "StateManager",
    "LockableObject",
    "operation",
    "ObjectState",
    "Counter",
    "Register",
    "Account",
    "CommutingCounter",
    "Directory",
    "FifoQueue",
    "FileObject",
    "Diary",
    "DiarySlot",
    # structures
    "SerializingAction",
    "GluedGroup",
    "independent_top_level",
    "AsyncIndependent",
    "independence_markers",
    "independent_relative_to",
    "CompensationScope",
    # errors
    "ReproError",
    "ActionAborted",
    "InvalidActionState",
    "ColourError",
    "CommitError",
    "LockRefused",
    "LockTimeout",
    "DeadlockDetected",
    "NoCurrentAction",
    "ObjectNotFound",
    "RpcTimeout",
]
