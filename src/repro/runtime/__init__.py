"""The local runtime: actions, locks and persistence in one process.

This is the library's primary programming surface — the paper's trial
implementation was likewise non-distributed (§6).  Application threads open
action scopes (``with runtime.top_level(): ...``), operate on
:class:`~repro.objects.lockable.LockableObject` instances, and the runtime
supplies blocking lock acquisition, deadlock detection and stable-store
persistence.  The distributed case is served by :mod:`repro.cluster`.
"""

from repro.runtime.context import current_action, require_current_action
from repro.runtime.scope import ActionScope
from repro.runtime.runtime import LocalRuntime

__all__ = ["LocalRuntime", "ActionScope", "current_action", "require_current_action"]
