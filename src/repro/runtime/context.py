"""Ambient action context.

Objects' methods find "the action I am being called within" here, so
application code reads naturally::

    with runtime.top_level():
        account.deposit(100)   # locks under the ambient action

Implemented with :mod:`contextvars`, so each thread (and each asyncio task,
should anyone embed the library) sees its own stack.  The cluster simulator
does **not** use ambient context — simulated processes interleave within
one thread, so they pass actions explicitly.
"""

from __future__ import annotations

from contextvars import ContextVar
from typing import Optional, Tuple, TYPE_CHECKING

from repro.errors import NoCurrentAction

if TYPE_CHECKING:  # pragma: no cover
    from repro.actions.action import Action

_stack: ContextVar[Tuple["Action", ...]] = ContextVar("repro_action_stack", default=())


def current_action() -> Optional["Action"]:
    """The innermost action of the calling context, or None."""
    stack = _stack.get()
    return stack[-1] if stack else None


def require_current_action() -> "Action":
    """Like :func:`current_action` but raising when there is none."""
    action = current_action()
    if action is None:
        raise NoCurrentAction("no action in scope; open one with runtime.top_level()")
    return action


def push_action(action: "Action") -> None:
    _stack.set(_stack.get() + (action,))


def pop_action(action: "Action") -> None:
    stack = _stack.get()
    if not stack or stack[-1] is not action:
        # Tolerate mismatches (e.g. an action aborted from another thread);
        # drop the action wherever it sits.
        _stack.set(tuple(a for a in stack if a is not action))
        return
    _stack.set(stack[:-1])


def context_depth() -> int:
    return len(_stack.get())
