"""LocalRuntime: the single-process, multi-threaded action runtime.

Holds the stable object store, the lock registry (coloured rules by
default), the colour allocator, and a deadlock detector.  All shared state
is guarded by one re-entrant mutex; waiting for locks happens *outside* the
mutex on per-request events, so holders can release while others wait.

Deadlock policy: detection runs whenever a request blocks (a cycle can only
form at the instant its last edge appears, i.e. when some request blocks),
and the youngest action in the cycle has its pending requests refused with
:class:`~repro.errors.DeadlockDetected` — the waiter raises, and its scope
aborts the action.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, Iterable, Optional

from repro.actions.action import Action
from repro.actions.runtime_api import ActionRuntime
from repro.actions.status import Outcome
from repro.colours.colour import Colour, ColourAllocator
from repro.errors import LockRefused, LockTimeout
from repro.locking.deadlock import DeadlockDetector
from repro.locking.modes import LockMode
from repro.locking.registry import LockRegistry
from repro.locking.request import LockRequest, RequestStatus
from repro.locking.rules import ColouredRules, LockRules
from repro.objects.state_manager import StateManager
from repro.runtime.context import current_action
from repro.runtime.scope import ActionScope
from repro.store.interface import ObjectStore
from repro.store.stable import StableStore
from repro.util.uid import Uid, UidGenerator

#: Sentinel: "use the ambient action as parent" in the action factories.
AMBIENT = object()


class LocalRuntime(ActionRuntime):
    """Everything needed to run (multi-)coloured actions in one process."""

    def __init__(self, rules: Optional[LockRules] = None,
                 store: Optional[ObjectStore] = None,
                 deadlock_detection: bool = True,
                 default_lock_timeout: Optional[float] = None):
        self.store: ObjectStore = store if store is not None else StableStore()
        self._registry = LockRegistry(rules if rules is not None else ColouredRules())
        self.colours = ColourAllocator()
        self.deadlock_detection = deadlock_detection
        self.default_lock_timeout = default_lock_timeout
        self.objects: Dict[Uid, StateManager] = {}
        self._action_uids = UidGenerator("action")
        self._object_uids = UidGenerator("object")
        self._undo_seq = itertools.count(1)
        self._mutex = threading.RLock()
        self._detector = DeadlockDetector(self._registry)
        self._observers: list = []
        #: optional Observability hub (see repro.obs); None = dark.
        self.obs = None
        self._obs_node = "local"
        #: action uid -> open termination span (commit/abort in flight),
        #: so persist spans can parent onto them
        self._terminating: Dict[Uid, object] = {}

    # -- ActionRuntime contract ------------------------------------------------

    @property
    def locks(self) -> LockRegistry:
        return self._registry

    def fresh_action_uid(self) -> Uid:
        with self._mutex:
            return self._action_uids.fresh()

    def next_undo_seq(self) -> int:
        return next(self._undo_seq)

    def persist_colour(self, action: Action, colour: Colour,
                       written: Dict[Uid, StateManager]) -> None:
        """Permanence of effect: write the new states to the stable store.

        Single store, single mutex — the multi-object write is atomic with
        respect to every other runtime operation.
        """
        span = None
        if self.obs is not None:
            parent = (self._terminating.get(action.uid)
                      or getattr(action, "_obs_span", None))
            span = self.obs.span(f"persist:{colour}", parent=parent,
                                 kind="client", node=self._obs_node,
                                 colour=str(colour))
        try:
            for object_uid in sorted(written):
                written[object_uid].persist_to(self.store)
        except Exception:
            if span is not None:
                span.set(outcome="failed").finish()
            raise
        if self.obs is not None:
            self.obs.emit("colour.permanent", action=str(action.uid),
                          colour=str(colour),
                          objects=",".join(sorted(str(u) for u in written)),
                          node=self._obs_node)
            self.obs.count("colour_permanent_total", colour=str(colour))
            span.set(outcome="persisted").finish()

    def note_commit_route(self, action: Action, colour: Colour,
                          destination) -> None:
        """Publish §5.3 routing (same event the cluster client emits)."""
        if self.obs is None:
            return
        self.obs.emit(
            "commit.route", action=str(action.uid), colour=str(colour),
            dest=(str(destination.uid) if destination is not None else ""),
            node=self._obs_node,
        )
        if destination is not None:
            self.obs.count("colour_inherited_total", colour=str(colour))

    def action_terminated(self, action: Action) -> None:
        for observer in self._observers:
            observer.on_action_terminated(action)

    def action_created(self, action: Action) -> None:
        for observer in self._observers:
            observer.on_action_created(action)

    def add_observer(self, observer) -> None:
        """Attach a runtime observer (tracing, metrics).

        Observers implement any of ``on_action_created(action)``,
        ``on_action_terminated(action)``, ``on_lock_granted(action,
        object_uid, mode, colour)`` — see :mod:`repro.trace`.
        """
        self._observers.append(observer)

    def attach_observability(self, hub, node: str = "local") -> None:
        """Wire an :class:`repro.obs.Observability` hub into this runtime.

        Installs an :class:`~repro.obs.bridge.ObservabilityBridge` observer
        (per-colour commit/abort counters, lock-grant counters, one span
        per action) and enables the runtime's own lock-wait/deadlock
        instrumentation.
        """
        from repro.obs.bridge import ObservabilityBridge

        self.obs = hub
        self._obs_node = node
        self._registry.on_event = self._emit_lock_event
        self.add_observer(ObservabilityBridge(hub, node=node))

    def _emit_lock_event(self, kind: str, **labels) -> None:
        if self.obs is not None:
            self.obs.emit(kind, node=self._obs_node, **labels)

    # -- object management ------------------------------------------------------

    def fresh_object_uid(self) -> Uid:
        with self._mutex:
            return self._object_uids.fresh()

    def register_object(self, obj: StateManager, persist: bool = True) -> None:
        """Track a live object; optionally write its initial committed state.

        Object creation is not itself transactional (matching Arjuna's
        model, where an object exists once its state reaches the store);
        modifications to it are.
        """
        with self._mutex:
            self.objects[obj.uid] = obj
            if persist:
                obj.persist_to(self.store)

    def object(self, object_uid: Uid) -> StateManager:
        return self.objects[object_uid]

    # -- action factories ----------------------------------------------------------

    def top_level(self, name: str = "", colour_name: str = "") -> ActionScope:
        """A top-level atomic action: one fresh colour."""
        colour = self.colours.fresh(colour_name or (name and f"{name}-colour") or "")
        return ActionScope(self, Action(self, [colour], parent=None, name=name))

    def atomic(self, parent=AMBIENT, name: str = "") -> ActionScope:
        """A (possibly nested) atomic action.

        Nested: inherits the parent's colours, giving exactly Moss's nested
        atomic actions.  Without a parent (explicit ``parent=None`` or no
        ambient action): a fresh top-level action.
        """
        resolved = self._resolve_parent(parent)
        if resolved is None:
            return self.top_level(name=name)
        return ActionScope(self, Action(self, resolved.colours, parent=resolved, name=name))

    def coloured(self, colours: Iterable[Colour], parent=AMBIENT,
                 name: str = "") -> ActionScope:
        """A multi-coloured action with an explicit static colour set (§5)."""
        resolved = self._resolve_parent(parent)
        return ActionScope(self, Action(self, colours, parent=resolved, name=name))

    def _resolve_parent(self, parent) -> Optional[Action]:
        if parent is AMBIENT:
            return current_action()
        return parent

    # -- termination (mutex-guarded wrappers) -------------------------------------------

    def commit_action(self, action: Action) -> Outcome:
        span = self._termination_span(action, "commit")
        try:
            with self._mutex:
                outcome = action.commit()
        except Exception:
            if span is not None:
                span.set(outcome="commit-failed").finish()
            raise
        finally:
            self._terminating.pop(action.uid, None)
        if span is not None:
            span.set(outcome="committed").finish()
        return outcome

    def abort_action(self, action: Action) -> Outcome:
        span = self._termination_span(action, "abort")
        try:
            with self._mutex:
                outcome = action.abort()
        except Exception:
            if span is not None:
                span.set(outcome="abort-failed").finish()
            raise
        finally:
            self._terminating.pop(action.uid, None)
        if span is not None:
            span.set(outcome="aborted").finish()
        return outcome

    def _termination_span(self, action: Action, name: str):
        """Client-kind termination span — the local analogue of the
        cluster client's commit/abort RPC spans, so local and cluster
        traces share one shape."""
        if self.obs is None:
            return None
        span = self.obs.span(name, parent=getattr(action, "_obs_span", None),
                             kind="client", node=self._obs_node)
        self._terminating[action.uid] = span
        return span

    # -- lock acquisition -----------------------------------------------------------------

    def acquire(self, action: Action, obj: StateManager, mode: LockMode,
                colour: Optional[Colour] = None,
                timeout: Optional[float] = None) -> LockRequest:
        """Blockingly acquire a lock for ``action`` on ``obj``.

        ``colour`` defaults to the action's ``default_colour`` (or its single
        colour).  On grant of a WRITE lock the object's before-image is
        captured (failure atomicity).  If the action declares a
        ``companion_colour`` (§5.3's serializing scheme), the lock is
        additionally shadowed in that colour: READ as READ, WRITE and
        EXCLUSIVE_READ as EXCLUSIVE_READ — so the enclosing control action
        will retain the object.  Raises :class:`DeadlockDetected`,
        :class:`LockTimeout` or :class:`LockRefused` on the failure paths.
        """
        chosen = action.lock_colour(colour)
        settled = threading.Event()
        wait_started = time.monotonic() if self.obs is not None else 0.0

        def completed(_request: LockRequest) -> None:
            settled.set()

        with self._mutex:
            request = self._registry.request(action, obj.uid, mode, chosen, completed)
            if not request.settled and self.deadlock_detection:
                self._detector.resolve_all()

        limit = timeout if timeout is not None else self.default_lock_timeout
        if not settled.wait(timeout=limit):
            with self._mutex:
                self._registry.cancel_request(request, reason="lock timeout")
            if request.status is not RequestStatus.GRANTED:
                raise LockTimeout(
                    f"{action.name}: {mode.value} lock on {obj.uid} timed out"
                )

        if self.obs is not None:
            self.obs.observe("lock_wait_seconds",
                             time.monotonic() - wait_started,
                             node=self._obs_node, colour=str(chosen))
            if request.error is not None:
                from repro.errors import DeadlockDetected
                if isinstance(request.error, DeadlockDetected):
                    self.obs.count("deadlock_detections_total",
                                   node=self._obs_node)
        if request.status is RequestStatus.GRANTED:
            if mode is LockMode.WRITE:
                with self._mutex:
                    action.record_write(obj, chosen)
            for observer in self._observers:
                observer.on_lock_granted(action, obj.uid, mode, chosen)
            companion = action.companion_colour
            if companion is not None and companion != chosen:
                shadow_mode = (
                    LockMode.READ if mode is LockMode.READ else LockMode.EXCLUSIVE_READ
                )
                self.acquire(action, obj, shadow_mode, colour=companion, timeout=timeout)
            return request
        if request.error is not None:
            raise request.error
        raise LockRefused(
            f"{action.name}: {mode.value} lock on {obj.uid} refused: {request.refusal}"
        )

    # -- semantic (type-specific) locking (§2) ------------------------------------------------

    def acquire_group(self, action: Action, obj: StateManager, group: str,
                      colour: Optional[Colour] = None,
                      timeout: Optional[float] = None) -> LockRequest:
        """Blockingly acquire an operation-group lock on a semantic object.

        The companion-colour mechanism applies here too: serializing
        constituents shadow every group lock with the reserved retain
        group in the control colour, pinning the object for the control
        action.
        """
        from repro.objects.semantic import RETAIN_GROUP

        chosen = action.lock_colour(colour)
        settled = threading.Event()

        def completed(_request: LockRequest) -> None:
            settled.set()

        with self._mutex:
            request = self._registry.request(action, obj.uid, group, chosen,
                                             completed)
            if not request.settled and self.deadlock_detection:
                self._detector.resolve_all()

        limit = timeout if timeout is not None else self.default_lock_timeout
        if not settled.wait(timeout=limit):
            with self._mutex:
                self._registry.cancel_request(request, reason="lock timeout")
            if request.status is not RequestStatus.GRANTED:
                raise LockTimeout(
                    f"{action.name}: group {group!r} lock on {obj.uid} timed out"
                )
        if request.status is RequestStatus.GRANTED:
            companion = action.companion_colour
            if (companion is not None and companion != chosen
                    and group != RETAIN_GROUP):
                self.acquire_group(action, obj, RETAIN_GROUP,
                                   colour=companion, timeout=timeout)
            return request
        if request.error is not None:
            raise request.error
        raise LockRefused(
            f"{action.name}: group {group!r} on {obj.uid} refused: "
            f"{request.refusal}"
        )

    def log_operation(self, action: Action, obj: StateManager, colour: Colour,
                      compensate, description: str = "") -> None:
        """Record a compensating operation (type-specific recovery)."""
        with self._mutex:
            action.record_operation(obj, colour, compensate, description)

    # -- introspection -----------------------------------------------------------------------

    def deadlock_victims(self) -> list:
        return list(self._detector.victims_chosen)

    def locked_objects(self) -> int:
        with self._mutex:
            return sum(1 for _ in self._registry.tables())
