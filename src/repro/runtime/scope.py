"""Action scopes: ``with`` blocks that begin/commit/abort actions.

Normal exit commits; an exception aborts and re-raises.  The scope also
maintains the ambient action stack so nested scopes and object methods
compose without explicit action plumbing.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.actions.action import Action
from repro.actions.status import ActionStatus, Outcome
from repro.runtime.context import pop_action, push_action

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import LocalRuntime


class ActionScope:
    """Context manager owning one action's begin/end.

    ``__enter__`` returns the :class:`~repro.actions.action.Action`.  Inside
    the block the action is the ambient one.  On clean exit the action is
    committed (unless already terminated manually); on exception it is
    aborted and the exception propagates.  The final outcome is available
    as :attr:`outcome` afterwards.
    """

    def __init__(self, runtime: "LocalRuntime", action: Action):
        self.runtime = runtime
        self.action = action
        self.outcome: Optional[Outcome] = None

    def __enter__(self) -> Action:
        push_action(self.action)
        return self.action

    def __exit__(self, exc_type, exc, tb) -> bool:
        pop_action(self.action)
        if self.action.status.terminated:
            self.outcome = (
                Outcome.COMMITTED
                if self.action.status is ActionStatus.COMMITTED
                else Outcome.ABORTED
            )
            return False
        if exc_type is None:
            self.outcome = self.runtime.commit_action(self.action)
        else:
            self.outcome = self.runtime.abort_action(self.action)
        return False
