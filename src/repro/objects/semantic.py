"""Semantic objects: type-specific concurrency control AND recovery (§2).

A :class:`SemanticLockableObject` declares a :class:`SemanticSpec`
(operation groups + compatibility) and decorates its operations with
:func:`semantic_operation`.  Compatible operations from *different* actions
run concurrently (e.g. two add()s on a counter); updates are undone by
**compensating operations** rather than before-images — the paper's §2
example verbatim: "rather than recovering the state of the object, the
corresponding subtract() operation can be performed".

Engineering notes:

- Operation bodies run under a per-object mutex: "compatible" means
  logically non-interfering, but two Python threads still need mutual
  exclusion for the read-modify-write itself.
- Every spec implicitly gains the reserved ``__retain__`` group
  (incompatible with everything), which is how serializing/glued control
  actions pin semantic objects (the companion-colour mechanism).
- Permanence: an outermost commit persists a state snapshot.  While
  *other* actions' compatible updates are still uncommitted, that snapshot
  transiently includes them; it converges once the concurrent updaters
  terminate.  Strict stable-state isolation for commuting updates would
  need operation-logged redo — noted as future work, as the paper itself
  only sketches type-specific recovery.
"""

from __future__ import annotations

import functools
import threading
from typing import Callable, ClassVar, Optional, TYPE_CHECKING

from repro.colours.colour import Colour
from repro.errors import LockingError
from repro.locking.semantic import SemanticSpec
from repro.objects.state_manager import StateManager
from repro.runtime.context import require_current_action
from repro.util.uid import Uid

if TYPE_CHECKING:  # pragma: no cover
    from repro.actions.action import Action
    from repro.runtime.runtime import LocalRuntime

#: reserved group used by control actions to pin a semantic object
RETAIN_GROUP = "__retain__"


def with_retain_group(spec: SemanticSpec) -> SemanticSpec:
    """The spec plus the reserved pin group (conflicts with everything)."""
    if RETAIN_GROUP in spec.groups:
        return spec
    return SemanticSpec(
        groups=spec.groups | {RETAIN_GROUP},
        compatible=spec.compatible,
        commuting=spec.commuting,
    )


class SemanticLockableObject(StateManager):
    """Base class for objects with operation-group locking."""

    #: subclasses must define their groups and compatibilities
    SEMANTICS: ClassVar[SemanticSpec]

    def __init__(self, runtime: "LocalRuntime", uid: Optional[Uid] = None,
                 persist: bool = True):
        if not hasattr(type(self), "SEMANTICS"):
            raise LockingError(
                f"{type(self).__name__} defines no SEMANTICS spec"
            )
        super().__init__(uid if uid is not None else runtime.fresh_object_uid())
        self.runtime = runtime
        self._operation_mutex = threading.RLock()
        runtime.register_object(self, persist=persist)
        runtime.locks.use_semantic(self.uid, with_retain_group(self.SEMANTICS))

    def run_compensation(self, method_name: str, result, args, kwargs) -> None:
        """Apply a compensating method under the object mutex."""
        with self._operation_mutex:
            getattr(self, method_name)(result, *args, **kwargs)


def semantic_operation(group: str, inverse: Optional[str] = None,
                       merge: Optional[str] = None,
                       committed: Optional[str] = None,
                       redo: Optional[str] = None) -> Callable:
    """Declare an operation in a semantic group.

    ``inverse`` names a compensating method ``def _undo_x(self, result,
    *args, **kwargs)`` — required for any group that modifies state, since
    before-images cannot coexist with concurrent compatible updates.
    The decorated method takes the usual ``colour=``/``action=`` kwargs.

    Two optional hooks serve the commit protocol's *commute path* (the
    operation-logged redo sketched in the module docstring): ``merge``
    names a method ``def _merge_x(self, *args)`` that applies just the
    operation's durable effect to a committed state — no availability
    bookkeeping, no preconditions (commuting operations are total by
    declaration); when omitted, the operation body itself is re-run.
    ``committed`` names a method ``def _settle_x(self, *args)`` invoked on
    the *live* instance once the operation's transaction commits, for
    types whose in-memory bookkeeping distinguishes committed from pending
    effects (e.g. escrow availability).  ``redo`` names a method applying
    the full, already-settled effect to a live instance that never saw the
    operation execute (a participant redoing a committed colour after a
    restart): effect *and* bookkeeping, but no precondition check and no
    later ``committed`` hook; defaults to ``merge``, then to the body.
    """

    def wrap(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def method(self: SemanticLockableObject, *args,
                   colour: Optional[Colour] = None,
                   action: Optional["Action"] = None, **kwargs):
            acting = action if action is not None else require_current_action()
            chosen = acting.lock_colour(colour)
            self.runtime.acquire_group(acting, self, group, colour=chosen)
            with self._operation_mutex:
                result = fn(self, *args, **kwargs)
            if inverse is not None:
                self.runtime.log_operation(
                    acting, self, chosen,
                    compensate=lambda: self.run_compensation(
                        inverse, result, args, kwargs
                    ),
                    description=f"{type(self).__name__}.{inverse}",
                )
            return result

        method.__repro_group__ = group
        method.__repro_inverse__ = inverse
        method.__repro_body__ = fn
        method.__repro_merge__ = merge
        method.__repro_committed__ = committed
        method.__repro_redo__ = redo if redo is not None else merge
        return method

    return wrap
