"""LockableObject: StateManager plus lock acquisition (Arjuna's LockManager).

Object types follow the Arjuna idiom: every public operation first calls
:meth:`setlock` in the appropriate mode, then reads/writes instance
variables.  ``setlock`` resolves the acting action (explicit argument or the
ambient one), resolves the colour (explicit, or the action's single
colour), blocks until granted, and — for writes — triggers before-image
capture so the action can be aborted.
"""

from __future__ import annotations

import functools
from typing import Callable, Optional, TYPE_CHECKING

from repro.colours.colour import Colour
from repro.locking.modes import LockMode
from repro.objects.state_manager import StateManager
from repro.runtime.context import require_current_action
from repro.util.uid import Uid

if TYPE_CHECKING:  # pragma: no cover
    from repro.actions.action import Action
    from repro.runtime.runtime import LocalRuntime


def operation(mode: LockMode) -> Callable:
    """Declare a lock-managed operation on a :class:`LockableObject`.

    The decorated method, called locally, first acquires ``mode`` on the
    object for the acting action (explicit ``action=`` / ``colour=`` kwargs
    or the ambient context) and then runs the body — the Arjuna idiom.

    The undecorated body and the mode stay reachable as
    ``method.__repro_body__`` / ``method.__repro_mode__`` so the cluster's
    object servers can take the lock themselves (event-driven, on their own
    lock tables) and then execute the body directly.
    """

    def wrap(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def method(self, *args, colour=None, action=None, **kwargs):
            self.setlock(mode, colour=colour, action=action)
            return fn(self, *args, **kwargs)

        method.__repro_mode__ = mode
        method.__repro_body__ = fn
        return method

    return wrap


class LockableObject(StateManager):
    """Base class for persistent, lock-managed object types."""

    def __init__(self, runtime: "LocalRuntime", uid: Optional[Uid] = None,
                 persist: bool = True):
        super().__init__(uid if uid is not None else runtime.fresh_object_uid())
        self.runtime = runtime
        runtime.register_object(self, persist=persist)

    def setlock(self, mode: LockMode, colour: Optional[Colour] = None,
                action: Optional["Action"] = None,
                timeout: Optional[float] = None) -> "Action":
        """Acquire ``mode`` on this object for the acting action; returns it."""
        acting = action if action is not None else require_current_action()
        self.runtime.acquire(acting, self, mode, colour=colour, timeout=timeout)
        return acting

    # Convenience wrappers keeping object methods terse.

    def read_lock(self, colour: Optional[Colour] = None,
                  action: Optional["Action"] = None) -> "Action":
        return self.setlock(LockMode.READ, colour=colour, action=action)

    def write_lock(self, colour: Optional[Colour] = None,
                   action: Optional["Action"] = None) -> "Action":
        return self.setlock(LockMode.WRITE, colour=colour, action=action)

    def exclusive_read_lock(self, colour: Optional[Colour] = None,
                            action: Optional["Action"] = None) -> "Action":
        return self.setlock(LockMode.EXCLUSIVE_READ, colour=colour, action=action)
