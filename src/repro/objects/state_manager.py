"""StateManager: the base class for persistent object types.

Subclasses implement ``save_state`` / ``restore_state`` over an
:class:`~repro.objects.state.ObjectState`; everything else — snapshots for
before-images, persistence into object stores, activation — is inherited.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar

from repro.errors import CorruptState
from repro.objects.state import ObjectState
from repro.store.interface import ObjectStore, StoredState
from repro.util.uid import Uid


class StateManager(ABC):
    """A persistent object: identity plus state (de)serialization.

    The class attribute ``type_name`` identifies the stored representation;
    activation refuses to load a state recorded under a different type.
    """

    type_name: ClassVar[str] = "state_manager"

    def __init__(self, uid: Uid):
        self.uid = uid

    # -- subclass contract -----------------------------------------------------

    @abstractmethod
    def save_state(self, state: ObjectState) -> None:
        """Pack all instance variables into ``state`` (fixed order)."""

    @abstractmethod
    def restore_state(self, state: ObjectState) -> None:
        """Unpack instance variables from ``state`` (same order as save)."""

    # -- snapshots (before-images, commit images) ---------------------------------

    def snapshot(self) -> bytes:
        """Serialize the current in-memory state to an opaque buffer."""
        state = ObjectState()
        self.save_state(state)
        return state.to_bytes()

    def restore_snapshot(self, payload: bytes) -> None:
        """Overwrite the in-memory state from a buffer produced by :meth:`snapshot`."""
        self.restore_state(ObjectState.from_bytes(payload))

    def stored_state(self) -> StoredState:
        return StoredState(self.uid, self.type_name, self.snapshot())

    # -- store interaction ----------------------------------------------------------

    def persist_to(self, store: ObjectStore) -> None:
        """Write the current state as the committed state in ``store``."""
        store.write_committed(self.stored_state())

    def activate_from(self, store: ObjectStore) -> None:
        """Load the committed state from ``store`` into memory."""
        stored = store.read_committed(self.uid)
        if stored.type_name != self.type_name:
            raise CorruptState(
                f"object {self.uid} stored as {stored.type_name!r}, "
                f"activated as {self.type_name!r}"
            )
        self.restore_snapshot(stored.payload)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.uid}>"
