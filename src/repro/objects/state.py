"""ObjectState: the typed serialization buffer for object states.

Modelled on Arjuna's ``ObjectState``: a ``save_state`` method packs an
object's instance variables in a fixed order; ``restore_state`` unpacks in
the same order.  Every value is tagged, and every unpack checks its tag, so
a mismatched read fails loudly with :class:`~repro.errors.CorruptState`
instead of silently mis-restoring.

Supported value types: int (arbitrary precision), float, bool, str, bytes,
None, :class:`~repro.util.uid.Uid`, and lists/tuples/dicts of these.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional

from repro.errors import CorruptState
from repro.util.uid import Uid

_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_BOOL = b"b"
_TAG_STR = b"s"
_TAG_BYTES = b"y"
_TAG_NONE = b"n"
_TAG_UID = b"u"
_TAG_LIST = b"l"
_TAG_TUPLE = b"t"
_TAG_DICT = b"d"


class ObjectState:
    """A pack/unpack buffer with a read cursor.

    Packing appends to the buffer; unpacking consumes from the cursor.  Use
    :meth:`to_bytes` / :meth:`from_bytes` to cross storage or the network.
    """

    def __init__(self, payload: bytes = b""):
        self._chunks: List[bytes] = [payload] if payload else []
        self._buffer: Optional[bytes] = payload if payload else None
        self._cursor = 0

    # -- whole-buffer ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        if self._buffer is None or len(self._chunks) != 1:
            self._buffer = b"".join(self._chunks)
            self._chunks = [self._buffer]
        return self._buffer

    @classmethod
    def from_bytes(cls, payload: bytes) -> "ObjectState":
        return cls(payload)

    @property
    def exhausted(self) -> bool:
        """True when every packed value has been unpacked."""
        return self._cursor >= len(self.to_bytes())

    # -- packing ------------------------------------------------------------------

    def pack_int(self, value: int) -> "ObjectState":
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeError(f"pack_int got {type(value).__name__}")
        digits = str(value).encode("ascii")
        self._append(_TAG_INT + struct.pack(">I", len(digits)) + digits)
        return self

    def pack_float(self, value: float) -> "ObjectState":
        self._append(_TAG_FLOAT + struct.pack(">d", float(value)))
        return self

    def pack_bool(self, value: bool) -> "ObjectState":
        self._append(_TAG_BOOL + (b"\x01" if value else b"\x00"))
        return self

    def pack_string(self, value: str) -> "ObjectState":
        if not isinstance(value, str):
            raise TypeError(f"pack_string got {type(value).__name__}")
        raw = value.encode("utf-8")
        self._append(_TAG_STR + struct.pack(">I", len(raw)) + raw)
        return self

    def pack_bytes(self, value: bytes) -> "ObjectState":
        self._append(_TAG_BYTES + struct.pack(">I", len(value)) + bytes(value))
        return self

    def pack_none(self) -> "ObjectState":
        self._append(_TAG_NONE)
        return self

    def pack_uid(self, value: Uid) -> "ObjectState":
        raw = value.namespace.encode("utf-8")
        self._append(_TAG_UID + struct.pack(">I", len(raw)) + raw + struct.pack(">q", value.sequence))
        return self

    def pack_value(self, value: Any) -> "ObjectState":
        """Pack any supported value, dispatching on its type."""
        if value is None:
            return self.pack_none()
        if isinstance(value, bool):
            return self.pack_bool(value)
        if isinstance(value, int):
            return self.pack_int(value)
        if isinstance(value, float):
            return self.pack_float(value)
        if isinstance(value, str):
            return self.pack_string(value)
        if isinstance(value, (bytes, bytearray)):
            return self.pack_bytes(bytes(value))
        if isinstance(value, Uid):
            return self.pack_uid(value)
        if isinstance(value, list):
            return self._pack_sequence(_TAG_LIST, value)
        if isinstance(value, tuple):
            return self._pack_sequence(_TAG_TUPLE, value)
        if isinstance(value, dict):
            self._append(_TAG_DICT + struct.pack(">I", len(value)))
            for key, item in value.items():
                self.pack_value(key)
                self.pack_value(item)
            return self
        raise TypeError(f"cannot pack value of type {type(value).__name__}")

    # -- unpacking -------------------------------------------------------------------

    def unpack_int(self) -> int:
        self._expect(_TAG_INT)
        length = self._read_u32()
        digits = self._read(length)
        try:
            return int(digits.decode("ascii"))
        except ValueError as exc:
            raise CorruptState(f"bad int digits {digits!r}") from exc

    def unpack_float(self) -> float:
        self._expect(_TAG_FLOAT)
        (value,) = struct.unpack(">d", self._read(8))
        return value

    def unpack_bool(self) -> bool:
        self._expect(_TAG_BOOL)
        return self._read(1) != b"\x00"

    def unpack_string(self) -> str:
        self._expect(_TAG_STR)
        length = self._read_u32()
        try:
            return self._read(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CorruptState("bad utf-8 in string") from exc

    def unpack_bytes(self) -> bytes:
        self._expect(_TAG_BYTES)
        return self._read(self._read_u32())

    def unpack_uid(self) -> Uid:
        self._expect(_TAG_UID)
        length = self._read_u32()
        namespace = self._read(length).decode("utf-8")
        (sequence,) = struct.unpack(">q", self._read(8))
        return Uid(namespace, sequence)

    def unpack_value(self) -> Any:
        """Unpack whatever was packed next (tag-dispatched)."""
        tag = self._peek_tag()
        if tag == _TAG_NONE:
            self._read(1)
            return None
        if tag == _TAG_BOOL:
            return self.unpack_bool()
        if tag == _TAG_INT:
            return self.unpack_int()
        if tag == _TAG_FLOAT:
            return self.unpack_float()
        if tag == _TAG_STR:
            return self.unpack_string()
        if tag == _TAG_BYTES:
            return self.unpack_bytes()
        if tag == _TAG_UID:
            return self.unpack_uid()
        if tag == _TAG_LIST:
            return list(self._unpack_sequence(_TAG_LIST))
        if tag == _TAG_TUPLE:
            return tuple(self._unpack_sequence(_TAG_TUPLE))
        if tag == _TAG_DICT:
            self._read(1)
            count = self._read_u32()
            result: Dict[Any, Any] = {}
            for _ in range(count):
                key = self.unpack_value()
                result[key] = self.unpack_value()
            return result
        raise CorruptState(f"unknown tag {tag!r} at offset {self._cursor}")

    # -- internals -----------------------------------------------------------------------

    def _pack_sequence(self, tag: bytes, values) -> "ObjectState":
        self._append(tag + struct.pack(">I", len(values)))
        for item in values:
            self.pack_value(item)
        return self

    def _unpack_sequence(self, tag: bytes) -> List[Any]:
        self._expect(tag)
        count = self._read_u32()
        return [self.unpack_value() for _ in range(count)]

    def _append(self, chunk: bytes) -> None:
        self._chunks.append(chunk)
        self._buffer = None

    def _peek_tag(self) -> bytes:
        data = self.to_bytes()
        if self._cursor >= len(data):
            raise CorruptState("unpack past end of state")
        return data[self._cursor:self._cursor + 1]

    def _expect(self, tag: bytes) -> None:
        actual = self._peek_tag()
        if actual != tag:
            raise CorruptState(
                f"expected tag {tag!r} but found {actual!r} at offset {self._cursor}"
            )
        self._cursor += 1

    def _read(self, count: int) -> bytes:
        data = self.to_bytes()
        if self._cursor + count > len(data):
            raise CorruptState("truncated state buffer")
        chunk = data[self._cursor:self._cursor + count]
        self._cursor += count
        return chunk

    def _read_u32(self) -> int:
        (value,) = struct.unpack(">I", self._read(4))
        return value
