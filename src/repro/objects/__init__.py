"""Persistent objects (§2's object model, after Arjuna's class hierarchy).

- :class:`ObjectState` — a typed pack/unpack buffer; an object's state
  crosses store, log and network boundaries as one of these.
- :class:`StateManager` — base class providing snapshot/restore and
  store activation for user-defined object types.
- :class:`LockableObject` — adds lock acquisition (``setlock``) tied to a
  runtime's ambient action, triggering before-image capture on first write.
"""

from repro.objects.state import ObjectState
from repro.objects.state_manager import StateManager
from repro.objects.lockable import LockableObject

__all__ = ["ObjectState", "StateManager", "LockableObject"]
