"""Setuptools shim.

``pip install -e .`` needs the ``wheel`` package for PEP 517 editable
installs; on offline machines without it, ``python setup.py develop``
installs the same editable package using only setuptools.
"""

from setuptools import setup

setup()
