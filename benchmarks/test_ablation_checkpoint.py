"""A10 — Ablation: write-ahead-log checkpointing keeps recovery bounded.

Without checkpoints the participant's log grows linearly with committed
transactions; with periodic checkpoints it stays near-constant, and
recovery after a crash scans only the undecided suffix.
"""

from bench_util import print_figure

from repro.cluster.cluster import Cluster

TRANSACTIONS = 30
CHECKPOINT_EVERY = 10


def run(checkpointing: bool):
    cluster = Cluster(seed=3)
    for name in ("coord", "part"):
        cluster.add_node(name)
    client = cluster.client("coord")
    part = cluster.servers["part"]
    log_sizes = []

    def app():
        ref = yield from client.create("part", "counter", value=0)
        for index in range(TRANSACTIONS):
            action = client.top_level(f"t{index}")
            yield from client.invoke(action, ref, "increment", 1)
            yield from client.commit(action)
            if checkpointing and (index + 1) % CHECKPOINT_EVERY == 0:
                part.checkpoint()
                cluster.servers["coord"].checkpoint()
            log_sizes.append(len(part.node.wal))
        return ref

    ref = cluster.run_process("coord", app())
    # a crash/restart still recovers correctly from the (possibly tiny) log
    cluster.crash("part")
    cluster.restart("part")
    cluster.run(until=cluster.kernel.now + 100)

    def read():
        action = client.top_level("r")
        value = yield from client.invoke(action, ref, "get")
        yield from client.commit(action)
        return value

    value = cluster.run_process("coord", read())
    return {
        "final_log": log_sizes[-1],
        "peak_log": max(log_sizes),
        "value_after_recovery": value,
    }


def run_both():
    return {
        "no checkpoints": run(False),
        f"checkpoint every {CHECKPOINT_EVERY}": run(True),
    }


def test_ablation_checkpointing(benchmark):
    results = benchmark.pedantic(run_both, rounds=2, iterations=1)
    plain = results["no checkpoints"]
    checked = results[f"checkpoint every {CHECKPOINT_EVERY}"]
    assert plain["value_after_recovery"] == TRANSACTIONS
    assert checked["value_after_recovery"] == TRANSACTIONS
    # unchecked log grows >= 1 record per txn (a single committed record
    # under the one-phase fast path); checkpointed stays bounded
    assert plain["final_log"] >= TRANSACTIONS
    assert checked["peak_log"] < plain["final_log"] / 2
    print_figure(
        f"A10 — participant WAL size over {TRANSACTIONS} transactions",
        [(label, m["peak_log"], m["final_log"], m["value_after_recovery"])
         for label, m in results.items()],
        headers=("scheme", "peak log records", "final log records",
                 "value after crash+recovery"),
    )
