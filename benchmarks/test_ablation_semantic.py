"""A6 — Ablation: type-specific concurrency control (§2).

"Type specific concurrency control … is a particularly attractive means of
increasing the concurrency in a system."  Measured: with N actions holding
update locks on one counter simultaneously, the semantic (commuting)
counter admits all of them at once where the exclusive counter admits one;
and type-specific recovery compensates an abort without disturbing
concurrent updaters.
"""

from bench_util import print_figure

from repro.errors import LockTimeout
from repro.locking.modes import LockMode
from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter
from repro.stdobjects.commuting import CommutingCounter

N_ACTIONS = 8


def exclusive_admission():
    runtime = LocalRuntime()
    counter = Counter(runtime, value=0)
    scopes = [runtime.top_level(name=f"w{i}") for i in range(N_ACTIONS)]
    actions = [scope.__enter__() for scope in scopes]
    admitted = 0
    for action in actions:
        try:
            runtime.acquire(action, counter, LockMode.WRITE, timeout=0.01)
            counter.value += 1
            admitted += 1
        except LockTimeout:
            pass
    for scope, action in zip(scopes, actions):
        if not action.status.terminated:
            runtime.commit_action(action)
        scope.__exit__(None, None, None)
    return admitted


def semantic_admission():
    runtime = LocalRuntime()
    counter = CommutingCounter(runtime, value=0)
    scopes = [runtime.top_level(name=f"w{i}") for i in range(N_ACTIONS)]
    actions = [scope.__enter__() for scope in scopes]
    admitted = 0
    for action in actions:
        try:
            counter.add(1, action=action)
            admitted += 1
        except LockTimeout:
            pass
    # abort half of them: compensation must not disturb the others
    for index, action in enumerate(actions):
        if index % 2 == 0:
            runtime.abort_action(action)
        else:
            runtime.commit_action(action)
    for scope in scopes:
        scope.__exit__(None, None, None)
    return admitted, counter.value


def run_both():
    exclusive = exclusive_admission()
    semantic, final_value = semantic_admission()
    return {
        "exclusive_admitted": exclusive,
        "semantic_admitted": semantic,
        "semantic_value_after_half_abort": final_value,
    }


def test_ablation_semantic_concurrency(benchmark):
    metrics = benchmark(run_both)
    assert metrics["exclusive_admitted"] == 1          # one writer at a time
    assert metrics["semantic_admitted"] == N_ACTIONS   # all commute
    assert metrics["semantic_value_after_half_abort"] == N_ACTIONS // 2
    print_figure(
        "A6 — simultaneous updaters admitted on one counter",
        [
            ("exclusive (WRITE) counter", metrics["exclusive_admitted"]),
            ("semantic (commuting) counter", metrics["semantic_admitted"]),
            ("value after half the updaters abort",
             metrics["semantic_value_after_half_abort"]),
        ],
        headers=("scheme", f"of {N_ACTIONS} concurrent updaters"),
    )
