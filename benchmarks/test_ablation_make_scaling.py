"""A8 — Ablation: distributed make scalability on synthetic projects.

Fig. 8 taken quantitative: on a layered random project, the makespan is
governed by the dependency depth, not the target count — widening the
project (more concurrent targets per layer) barely moves the makespan,
while a serial build grows linearly with the target count.
"""

from bench_util import print_figure

from repro.apps.make.distributed import DistributedMakeEngine
from repro.apps.make.graph import DependencyGraph
from repro.apps.make.workload import generate_project
from repro.cluster.cluster import Cluster

COMPILE = 100.0
LAYERS = 2
NODES = [f"n{i}" for i in range(4)]


def run_width(width: int):
    project = generate_project(seed=7, layers=LAYERS, width=width,
                               fan_in=2, nodes=NODES)
    cluster = Cluster(seed=width)
    cluster.add_node("ws")
    for node in NODES:
        cluster.add_node(node)
    engine = DistributedMakeEngine(
        cluster, cluster.client("ws"), project.makefile, project.placement,
        compile_duration=COMPILE,
    )
    cluster.run_process("ws", engine.setup(project.sources))
    graph = DependencyGraph(project.makefile)
    needed = graph.needed("goal")  # random fan-in can orphan a target
    start = cluster.kernel.now
    report = cluster.run_process("ws", engine.make("goal"))
    makespan = cluster.kernel.now - start
    return {
        "width": width,
        "targets": len(needed),
        "makespan": makespan,
        "serial_estimate": len(needed) * COMPILE,
        "completed": report.completed and set(report.rebuilt) == needed,
        "depth": len(graph.levels("goal")),
    }


def sweep():
    return [run_width(width) for width in (2, 4, 8)]


def test_ablation_make_scaling(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for row in rows:
        assert row["completed"]
        # always beats serial (for the narrow case messaging eats most of
        # the margin; the depth bound is what matters as width grows)
        assert row["makespan"] < row["serial_estimate"]
    # widening 4x grows the serial cost 4x but the makespan barely moves:
    # speedup grows with width, makespan stays depth-bounded
    narrow, wide = rows[0], rows[-1]
    assert wide["targets"] >= 3 * narrow["targets"]
    assert wide["makespan"] < narrow["makespan"] * 2.0
    assert (wide["serial_estimate"] / wide["makespan"]
            > 2 * narrow["serial_estimate"] / narrow["makespan"])
    print_figure(
        "A8 — distributed make scalability (layers=2, fan-in=2, 4 nodes)",
        [(row["width"], row["targets"], f"{row['makespan']:.0f}",
          f"{row['serial_estimate']:.0f}",
          f"{row['serial_estimate'] / row['makespan']:.2f}x")
         for row in rows],
        headers=("layer width", "targets", "makespan", "serial estimate",
                 "speedup"),
    )
