"""A2 — Ablation: the §5.1 reduction.

"If all the actions in a coloured system possess the same single colour
then the system reverts to being just a normal atomic action system."

The benchmark replays a fixed battery of randomized lock schedules against
the conventional rules and the coloured rules (single shared colour) and
counts decision mismatches — the paper's claim is mismatches == 0.
"""

from bench_util import print_figure

from repro.colours.colour import Colour
from repro.locking.modes import LockMode
from repro.locking.owner import StubOwner
from repro.locking.registry import LockRegistry
from repro.locking.rules import ColouredRules, ConventionalRules
from repro.util.rng import SplitRandom
from repro.util.uid import UidGenerator

N_SCHEDULES = 40
OPS_PER_SCHEDULE = 120


def build_world():
    auids = UidGenerator("a")
    colour = Colour(UidGenerator("c").fresh(), "only")

    def make(parent=None):
        uid = auids.fresh()
        path = (parent.path if parent else ()) + (uid,)
        return StubOwner(uid=uid, path=path, colours=frozenset((colour,)))

    owners = []
    for _ in range(2):
        root = make()
        mid = make(parent=root)
        owners.extend([root, mid, make(parent=mid)])
    return owners, colour


def random_schedule(rng, owners):
    ops = []
    for _ in range(OPS_PER_SCHEDULE):
        kind = rng.choice(["request", "request", "request", "abort", "commit"])
        ops.append((
            kind,
            rng.randrange(len(owners)),
            rng.choice(list(LockMode)),
            rng.randrange(3),
        ))
    return ops


def run_schedule(rules, owners, colour, operations):
    registry = LockRegistry(rules)
    object_uids = [UidGenerator(f"o{i}").fresh() for i in range(3)]
    trace = []
    for op, owner_index, mode, obj_index in operations:
        owner = owners[owner_index]
        if op == "request":
            registry.request(
                owner, object_uids[obj_index], mode, colour,
                on_complete=lambda r, o=owner_index: trace.append(
                    (o, r.status.value)
                ),
            )
        elif op == "abort":
            registry.release_action(owner.uid)
        else:
            parent_uid = owner.path[-2] if len(owner.path) > 1 else None
            parent = next((o for o in owners if o.uid == parent_uid), None)
            registry.transfer_on_commit(owner.uid, lambda c: parent)
    return trace


def compare_battery():
    owners, colour = build_world()
    rng = SplitRandom(2026)
    mismatches = 0
    for index in range(N_SCHEDULES):
        schedule = random_schedule(rng.split(f"s{index}"), owners)
        conventional = run_schedule(ConventionalRules(), owners, colour, schedule)
        coloured = run_schedule(ColouredRules(), owners, colour, schedule)
        if conventional != coloured:
            mismatches += 1
    return {"schedules": N_SCHEDULES, "mismatches": mismatches}


def test_ablation_single_colour_reduction(benchmark):
    metrics = benchmark(compare_battery)
    assert metrics["mismatches"] == 0
    print_figure(
        "A2 — single-colour coloured system vs conventional atomic actions",
        [("randomized schedules compared", metrics["schedules"]),
         ("behavioural mismatches", metrics["mismatches"])],
        headers=("measure", "value"),
    )
