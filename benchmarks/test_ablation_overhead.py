"""A3 — Ablation: the cost of the coloured rules.

§6: "The locking rules of coloured actions require minor modifications to
the 'conventional' rules" — i.e. the mechanism should be essentially free.
The benchmark measures raw acquire/release throughput under both rule sets
and asserts the coloured overhead is small.
"""

import time

from bench_util import print_figure

from repro.colours.colour import Colour
from repro.locking.modes import LockMode
from repro.locking.owner import StubOwner
from repro.locking.registry import LockRegistry
from repro.locking.rules import ColouredRules, ConventionalRules
from repro.util.uid import UidGenerator

N_OBJECTS = 50
ROUNDS = 40


def lock_unlock_round(rules_factory):
    auids = UidGenerator("a")
    colour = Colour(UidGenerator("c").fresh(), "only")
    object_uids = [UidGenerator("o").fresh() for _ in range(N_OBJECTS)]
    registry = LockRegistry(rules_factory())
    for _ in range(ROUNDS):
        uid = auids.fresh()
        owner = StubOwner(uid=uid, path=(uid,), colours=frozenset((colour,)))
        for object_uid in object_uids:
            registry.request(owner, object_uid, LockMode.WRITE, colour)
        registry.transfer_on_commit(owner.uid, lambda c: None)
    return ROUNDS * N_OBJECTS


def measure(rules_factory):
    start = time.perf_counter()
    operations = lock_unlock_round(rules_factory)
    elapsed = time.perf_counter() - start
    return operations / elapsed


def test_ablation_locking_overhead(benchmark):
    # warm-up + comparison measurements outside the timed benchmark
    conventional_ops = max(measure(ConventionalRules) for _ in range(3))
    coloured_ops = max(measure(ColouredRules) for _ in range(3))
    # the timed benchmark target is the coloured path
    benchmark(lock_unlock_round, ColouredRules)
    ratio = conventional_ops / coloured_ops
    assert ratio < 2.0, (
        f"coloured rules cost {ratio:.2f}x conventional; expected 'minor'"
    )
    print_figure(
        "A3 — lock acquire+release throughput",
        [
            ("conventional rules (ops/s)", f"{conventional_ops:,.0f}"),
            ("coloured rules (ops/s)", f"{coloured_ops:,.0f}"),
            ("overhead factor", f"{ratio:.2f}x"),
        ],
        headers=("rule set", "value"),
    )
