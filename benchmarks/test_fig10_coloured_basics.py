"""F10 — Fig. 10: the introductory two-coloured action.

B {red, blue} inside A {blue} locks Or in red and Ob in blue.  After B's
commit: red locks released and Or's states permanent (B top-level w.r.t.
red); blue locks retained by A.  If A then aborts, only Ob is undone.
"""

from bench_util import print_figure

from repro.locking.modes import LockMode
from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter

SET_SIZE = 5


def fig10_episode(a_aborts: bool):
    runtime = LocalRuntime()
    red = runtime.colours.fresh("red")
    blue = runtime.colours.fresh("blue")
    o_r = [Counter(runtime, value=0) for _ in range(SET_SIZE)]
    o_b = [Counter(runtime, value=0) for _ in range(SET_SIZE)]
    checkpoints = {}
    try:
        with runtime.coloured([blue], name="A") as a:
            with runtime.coloured([red, blue], name="B") as b:
                for obj in o_r:
                    obj.increment(1, colour=red, action=b)
                for obj in o_b:
                    obj.increment(1, colour=blue, action=b)
            checkpoints["red_released"] = not any(
                runtime.locks.holds(a.uid, obj.uid, LockMode.READ)
                for obj in o_r
            )
            checkpoints["blue_retained"] = all(
                runtime.locks.holds(a.uid, obj.uid, LockMode.WRITE)
                for obj in o_b
            )
            checkpoints["red_stable_at_b_commit"] = all(
                runtime.store.read_committed(obj.uid).payload == obj.snapshot()
                for obj in o_r
            )
            if a_aborts:
                raise RuntimeError("A aborts")
    except RuntimeError:
        pass
    checkpoints["or_surviving"] = sum(obj.value for obj in o_r)
    checkpoints["ob_surviving"] = sum(obj.value for obj in o_b)
    return checkpoints


def run_both():
    return {"A commits": fig10_episode(False), "A aborts": fig10_episode(True)}


def test_fig10_coloured_basics(benchmark):
    results = benchmark(run_both)
    for label, metrics in results.items():
        assert metrics["red_released"] is True
        assert metrics["blue_retained"] is True
        assert metrics["red_stable_at_b_commit"] is True
        assert metrics["or_surviving"] == SET_SIZE  # red always survives
    assert results["A commits"]["ob_surviving"] == SET_SIZE
    assert results["A aborts"]["ob_surviving"] == 0   # only blue is undone
    print_figure(
        "Fig. 10 — coloured action B {red,blue} in A {blue}",
        [(label, m["or_surviving"], m["ob_surviving"])
         for label, m in results.items()],
        headers=("episode", f"Or updates surviving (of {SET_SIZE})",
                 f"Ob updates surviving (of {SET_SIZE})"),
    )
