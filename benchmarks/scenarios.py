"""Perf-observatory scenario harness: deterministic workloads -> BENCH files.

Each scenario spins up a seeded simulated cluster, runs a workload shaped
to stress one axis of the system, and emits a ``BENCH_<scenario>.json``
document::

    {
      "format": "repro-perf/1",
      "scenario": "contention_sweep",
      "seed": 11,
      "params": {...},                # workload shape, for humans
      "metrics": {...},              # simulated-time numbers — GATED by
                                     #   python -m repro.obs.perf compare
      "info": {...}                  # wall-clock numbers (obs overhead,
                                     #   host-dependent) — never gated
    }

Everything under ``metrics`` derives from the sim clock, seeded RNGs and
the metrics registry, so a given seed reproduces the numbers exactly on
any host; the checked-in baselines at the repository root are diffed with
tolerance bands by the CI perf gate (exit 2 on regression)::

    python benchmarks/scenarios.py --out /tmp/bench
    python -m repro.obs.perf compare --baseline . --current /tmp/bench

Scenarios: ``contention_sweep`` (lock contention ladder, plus the
observability layer's own measured overhead with the flight recorder
attached), ``colour_sweep`` (commit cost vs colours per action),
``cluster_fanout`` (commit cost vs participant servers), ``chaos_mix``
(crash/restart schedule with conservation checked), ``prepare_batching``
(round trips saved by batching multi-colour prepare sub-calls through
``call_many``), and ``twopc_fastpath`` (commit-protocol fast paths —
piggybacked decision, read-only votes, one-phase commit — against the
classic protocol on an identical workload), and ``commute_avoidance``
(commutativity-based coordination avoidance: fully-commuting colours
deciding locally in one round, against classic 2PC and against semantic
locking without the commute path, on an identical workload), and
``soak_smoke`` (capped-horizon soak-observatory arms with segment
rotation: the clean arm gated at zero SLO breaches, the faulty arm's
seeded fault burst gated to trip the commit-latency burn objective), and
``realtime_backend`` (the same fault-free workloads on the sim and
asyncio execution backends: gated outcome parity plus measured
wall-clock figures under ``info`` for the ``--gate-wall`` arm).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

if __package__ in (None, ""):  # standalone: python benchmarks/scenarios.py
    sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                    os.pardir, "src"))

from repro.backend import AsyncioBackend
from repro.cluster.cluster import Cluster
from repro.cluster.failures import FaultSchedule
from repro.cluster.network import NetworkConfig
from repro.obs.perf import ObsOverheadMeter
from repro.obs.perf.overhead import measure_noop_path
from repro.obs.postmortem import LOCK_CONFLICT, UNKNOWN
from repro.obs.postmortem.render import crosscheck
from repro.objects.state import ObjectState
from repro.sim.kernel import Timeout

FORMAT = "repro-perf/1"

#: the documented ceiling on the observability layer's own wall-time share
#: (``ObsOverheadMeter.report()["obs_share"]``) with the full stack attached
#: — auditor, hold-time tracker, sampler, flight recorder AND the postmortem
#: engine.  Way above the measured ~7% so host noise never trips it, low
#: enough that an accidentally quadratic subscriber does.
OBS_SHARE_BUDGET = 0.25


def _round_all(metrics: Dict[str, float], digits: int = 6) -> Dict[str, float]:
    return {key: round(float(value), digits) for key, value in metrics.items()}


def _document(scenario: str, seed: int, params: Dict[str, Any],
              metrics: Dict[str, float],
              info: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    doc = {"format": FORMAT, "scenario": scenario, "seed": seed,
           "params": params, "metrics": _round_all(metrics)}
    if info:
        doc["info"] = info
    return doc


def _stable_int(cluster, ref) -> int:
    stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
    return ObjectState.from_bytes(stored.payload).unpack_int()


# -- contention sweep ---------------------------------------------------------

def _contention_run(seed: int, objects: int, workers: int, ops: int,
                    metered: bool = False, abba: bool = False):
    """Workers hammer a shared counter pool; fewer objects = more conflict.

    Acquisition order is canonical (sorted by home node, then uid) so the
    sweep measures lock *contention*, not deadlock: with two objects and
    sampled order, symmetric ABBA cycles made the victim detector — not
    lock waiting — the dominant cost.  ``abba=True`` keeps the sampled
    (adversarial) order as an explicit deadlock-coverage variant.
    """
    cluster = Cluster(seed=seed, lock_wait_timeout=40.0)
    nodes = ("n0", "n1", "n2")
    for name in nodes:
        cluster.add_node(name)
    # host GC/alloc pressure rides the metered run's timeline only: the
    # values are wall-clock facts, never gated
    sampler, recorder = cluster.attach_perf(interval=5.0, seed=seed,
                                            process_probes=metered)
    postmortem = cluster.attach_postmortem()
    # the metered level also carries the introspection prober, so the
    # obs-share budget below covers live status_query fan-outs too
    inspector = cluster.attach_introspection(interval=10.0) if metered \
        else None
    refs: List[Any] = []
    outcomes = {"committed": 0, "aborted": 0}

    def setup():
        client = cluster.client("n0")
        for index in range(objects):
            ref = yield from client.create(nodes[index % len(nodes)],
                                           "counter", value=0)
            refs.append(ref)

    cluster.run_process("n0", setup())

    def worker(worker_id: int):
        client = cluster.client(nodes[worker_id % len(nodes)],
                                name=f"w{worker_id}")
        rng = random.Random(seed * 1000 + worker_id)
        for op in range(ops):
            picks = rng.sample(refs, k=min(2, len(refs)))
            if not abba:
                picks.sort(key=lambda ref: (ref.node, ref.uid))
            action = client.top_level(f"w{worker_id}.op{op}")
            try:
                for ref in picks:
                    yield from client.invoke(action, ref, "increment", 1)
                yield from client.commit(action)
                outcomes["committed"] += 1
            except Exception:
                outcomes["aborted"] += 1
                if not action.status.terminated:
                    yield from client.abort(action)
            yield Timeout(1.0 + rng.random())

    for worker_id in range(workers):
        cluster.spawn(nodes[worker_id % len(nodes)], worker(worker_id),
                      name=f"worker{worker_id}")
    meter = None
    if metered:
        meter = ObsOverheadMeter(cluster.obs).attach()
    cluster.run()
    if meter is not None:
        meter.detach()
    if inspector is not None:
        # probing a healthy contended cluster must never invent drift
        assert inspector.drift == [], [str(d) for d in inspector.drift]
        assert inspector.probes > 0
    total = sum(_stable_int(cluster, ref) for ref in refs)
    assert total == outcomes["committed"] * 2 or len(refs) == 1, (
        total, outcomes)
    waits = [h for labels, h in cluster.obs.metrics.series("lock_wait_time")]
    wait_count = sum(h.count for h in waits)
    wait_sum = sum(h.total for h in waits)
    _check_attribution(cluster, postmortem, outcomes)
    return {
        "cluster": cluster, "sampler": sampler, "recorder": recorder,
        "meter": meter, "postmortem": postmortem, "inspector": inspector,
        "committed": outcomes["committed"], "aborted": outcomes["aborted"],
        "elapsed": cluster.kernel.now,
        "lock_wait_mean": (wait_sum / wait_count) if wait_count else 0.0,
        "lock_waits": wait_count,
    }


def _check_attribution(cluster, postmortem, outcomes) -> None:
    """The postmortem acceptance bar, enforced on every sweep level:
    every abort gets a concrete reason (zero ``unknown``), every
    lock-conflict abort names its blocker (object, colour, holder), and
    the per-colour attribution totals equal the per-colour abort counters
    the bridge maintains independently."""
    aborted = postmortem.aborted()
    assert len(aborted) >= outcomes["aborted"], (len(aborted), outcomes)
    unattributed = [r for r in aborted if r.reason == UNKNOWN]
    assert not unattributed, [str(r) for r in unattributed]
    bare = [r for r in aborted
            if r.reason == LOCK_CONFLICT and not r.blockers]
    assert not bare, [str(r) for r in bare]
    mismatches = crosscheck(list(postmortem.records),
                            cluster.obs.metrics.dump())
    assert not mismatches, mismatches


def scenario_contention_sweep(seed: int = 11) -> Dict[str, Any]:
    workers, ops = 6, 5
    levels = (8, 4, 2, 1)
    metrics: Dict[str, float] = {}
    info: Dict[str, Any] = {}
    for objects in levels:
        run = _contention_run(seed, objects, workers, ops,
                              metered=(objects == levels[-1]))
        prefix = f"objects={objects}"
        metrics[f"{prefix}.committed"] = run["committed"]
        metrics[f"{prefix}.aborted"] = run["aborted"]
        metrics[f"{prefix}.elapsed_sim"] = run["elapsed"]
        metrics[f"{prefix}.lock_wait_mean"] = run["lock_wait_mean"]
        # attribution columns: per-reason abort counts are pure functions
        # of the seeded event stream, so they gate like any sim metric
        for reason, count in sorted(run["postmortem"].reason_counts.items()):
            metrics[f"{prefix}.aborts.{reason}"] = count
        if objects == levels[-1]:
            metrics["max_contention.timeline_points"] = len(
                run["sampler"].points)
            metrics["max_contention.ring_events"] = len(
                run["recorder"].ring_events())
            metrics["max_contention.introspect_probes"] = (
                run["inspector"].probes)
            report = run["meter"].report()
            # the full obs stack (auditor + sampler + flight recorder +
            # postmortem engine) must stay within the documented budget
            assert report["obs_share"] <= OBS_SHARE_BUDGET, (
                report["obs_share"], OBS_SHARE_BUDGET)
            info["obs_overhead"] = {
                "events_total": report["events_total"],
                "obs_wall_seconds": round(report["obs_wall_seconds"], 6),
                "run_wall_seconds": round(report["run_wall_seconds"], 6),
                "obs_share": round(report["obs_share"], 4),
                "obs_share_budget": OBS_SHARE_BUDGET,
            }
            info["noop_path"] = {
                "nanos_per_call": round(
                    measure_noop_path()["nanos_per_call"], 1),
            }
    # adversarial variant: sampled (non-canonical) acquisition order at two
    # objects, where symmetric ABBA cycles keep deadlock detection honest
    run = _contention_run(seed, 2, workers, ops, abba=True)
    prefix = "objects=2-abba"
    metrics[f"{prefix}.committed"] = run["committed"]
    metrics[f"{prefix}.aborted"] = run["aborted"]
    metrics[f"{prefix}.elapsed_sim"] = run["elapsed"]
    metrics[f"{prefix}.lock_wait_mean"] = run["lock_wait_mean"]
    for reason, count in sorted(run["postmortem"].reason_counts.items()):
        metrics[f"{prefix}.aborts.{reason}"] = count
    return _document(
        "contention_sweep", seed,
        {"workers": workers, "ops_per_worker": ops, "levels": list(levels),
         "order": "canonical (+ objects=2 abba variant)"},
        metrics, info)


# -- colour-count sweep -------------------------------------------------------

def _coloured_commits(seed: int, colours: int, commits: int):
    """Top-level actions with k colours, each colour writing on 2 servers."""
    cluster = Cluster(seed=seed,
                      config=NetworkConfig(min_delay=1.0, max_delay=1.0))
    nodes = ("home", "s0", "s1", "s2")
    for name in nodes:
        cluster.add_node(name)
    client = cluster.client("home")
    servers = nodes[1:]
    result: Dict[str, Any] = {}

    def app():
        pool = {}
        for server in servers:
            pool[server] = []
            for index in range(colours):
                ref = yield from client.create(server, "counter", value=0)
                pool[server].append(ref)
        start = cluster.kernel.now
        messages_before = cluster.network.sent_count
        latencies = []
        for index in range(commits):
            cols = [client.fresh_colour(f"c{index}.{k}")
                    for k in range(colours)]
            action = client.coloured(cols, name=f"multi{index}")
            for k, colour in enumerate(cols):
                for server in servers[:2]:
                    yield from client.invoke(action, pool[server][k],
                                             "increment", 1, colour=colour)
            commit_start = cluster.kernel.now
            yield from client.commit(action)
            latencies.append(cluster.kernel.now - commit_start)
        result["commit_latency"] = sum(latencies) / len(latencies)
        result["messages_per_commit"] = (
            (cluster.network.sent_count - messages_before) / commits)
        result["elapsed"] = cluster.kernel.now - start

    cluster.run_process("home", app())
    result["saved_rpcs"] = cluster.obs.metrics.value(
        "prepare_batch_saved_rpcs_total")
    return cluster, result


def scenario_colour_sweep(seed: int = 17) -> Dict[str, Any]:
    commits = 4
    metrics: Dict[str, float] = {}
    for colours in (1, 2, 3, 4):
        _cluster, run = _coloured_commits(seed, colours, commits)
        prefix = f"colours={colours}"
        metrics[f"{prefix}.commit_latency"] = run["commit_latency"]
        metrics[f"{prefix}.messages_per_commit"] = run["messages_per_commit"]
        metrics[f"{prefix}.saved_prepare_rpcs"] = run["saved_rpcs"]
    return _document("colour_sweep", seed,
                     {"commits": commits, "writes_per_colour": 2},
                     metrics)


# -- cluster fan-out ----------------------------------------------------------

def scenario_cluster_fanout(seed: int = 23) -> Dict[str, Any]:
    """Commit cost vs participant count (the A11 sweep, harnessed)."""
    commits = 5
    metrics: Dict[str, float] = {}
    for participants in (1, 2, 4, 8):
        names = ["coord"] + [f"p{i}" for i in range(participants)]
        cluster = Cluster(seed=seed,
                          config=NetworkConfig(min_delay=1.0, max_delay=1.0))
        for name in names:
            cluster.add_node(name)
        client = cluster.client("coord")
        result: Dict[str, Any] = {}

        def app(names=names, client=client, cluster=cluster, result=result):
            refs = []
            for name in names[1:]:
                ref = yield from client.create(name, "counter", value=0)
                refs.append(ref)
            messages_before = cluster.network.sent_count
            latencies = []
            for index in range(commits):
                action = client.top_level(f"wide{index}")
                for ref in refs:
                    yield from client.invoke(action, ref, "increment", 1)
                commit_start = cluster.kernel.now
                yield from client.commit(action)
                latencies.append(cluster.kernel.now - commit_start)
            result["commit_latency"] = sum(latencies) / len(latencies)
            result["messages"] = cluster.network.sent_count - messages_before

        cluster.run_process("coord", app())
        prefix = f"participants={participants}"
        metrics[f"{prefix}.commit_latency"] = result["commit_latency"]
        metrics[f"{prefix}.messages_per_commit_per_node"] = (
            result["messages"] / commits / participants)
    return _document("cluster_fanout", seed, {"commits": commits}, metrics)


# -- chaos mix ----------------------------------------------------------------

def scenario_chaos_mix(seed: int = 7) -> Dict[str, Any]:
    """Crash/restart schedule under transfers; conservation must hold."""
    transfers, amount, initial = 15, 5, 1000
    cluster = Cluster(
        seed=seed,
        config=NetworkConfig(drop_probability=0.08,
                             duplicate_probability=0.04),
        rpc_retries=10, lock_wait_timeout=120.0,
    )
    for name in ("home", "s1", "s2"):
        cluster.add_node(name)
    sampler, recorder = cluster.attach_perf(interval=25.0, seed=seed,
                                            sample_rate=0.5)
    client = cluster.client("home")
    refs: Dict[str, Any] = {}
    outcomes = {"committed": 0, "failed": 0}

    def setup():
        refs["A"] = yield from client.create("s1", "account",
                                             owner="A", balance=initial)
        refs["B"] = yield from client.create("s2", "account",
                                             owner="B", balance=0)

    cluster.run_process("home", setup())
    schedule = FaultSchedule(cluster, seed=seed,
                             mean_uptime=300.0, mean_downtime=40.0)
    schedule.arm(["s1", "s2"], horizon=2500.0, start_after=50.0)

    def workload():
        for index in range(transfers):
            action = client.top_level(f"xfer{index}")
            try:
                yield from client.invoke(action, refs["A"], "withdraw", amount)
                yield from client.invoke(action, refs["B"], "deposit", amount)
                yield from client.commit(action)
                outcomes["committed"] += 1
            except Exception:
                outcomes["failed"] += 1
                if not action.status.terminated:
                    yield from client.abort(action)
            yield Timeout(20.0)

    cluster.run_process("home", workload())
    for name in ("s1", "s2"):
        if not cluster.nodes[name].alive:
            cluster.restart(name)
    cluster.run(until=cluster.kernel.now + 2_000.0)

    def stable_balance(ref):
        stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
        state = ObjectState.from_bytes(stored.payload)
        state.unpack_string()
        return state.unpack_int()

    balance_a, balance_b = stable_balance(refs["A"]), stable_balance(refs["B"])
    assert balance_a + balance_b == initial, (balance_a, balance_b, outcomes)
    assert balance_b == outcomes["committed"] * amount, (balance_b, outcomes)
    findings = cluster.obs.auditor.report()
    return _document(
        "chaos_mix", seed,
        {"transfers": transfers, "drop_probability": 0.08},
        {
            "committed": outcomes["committed"],
            "failed": outcomes["failed"],
            "crashes": schedule.crash_count(),
            "audit_findings": len(findings),
            "flight_ring_events": len(recorder.ring_events()),
            "flight_sampled_out": recorder.skipped,
            "timeline_points": len(sampler.points),
            "elapsed_sim": cluster.kernel.now,
        })


# -- prepare batching ---------------------------------------------------------

def scenario_prepare_batching(seed: int = 31) -> Dict[str, Any]:
    """Round trips saved by batching multi-colour prepares per server.

    k permanent colours writing on the same s servers would cost k*s
    prepare RPCs sequentially; the batched fan-out sends s.  The saved
    (k-1)*s round trips are counted by the client and gated here.
    """
    colours, commits = 4, 6
    cluster, run = _coloured_commits(seed, colours, commits)
    pairs_per_commit = colours * 2          # each colour writes on 2 servers
    batched_per_commit = 2                  # one batch per involved server
    return _document(
        "prepare_batching", seed,
        {"colours": colours, "commits": commits,
         "servers_per_colour": 2},
        {
            "saved_prepare_rpcs_total": run["saved_rpcs"],
            "saved_per_commit": run["saved_rpcs"] / commits,
            "sequential_prepare_rpcs_per_commit": pairs_per_commit,
            "batched_prepare_rpcs_per_commit": batched_per_commit,
            "messages_per_commit": run["messages_per_commit"],
            "commit_latency": run["commit_latency"],
        })


# -- 2PC fast paths -----------------------------------------------------------

def _fastpath_mix(seed: int, fast_paths: bool) -> Dict[str, Any]:
    """One seeded commit mix, classic or optimised.

    Three transaction profiles over two object servers (the coordinator
    hosts nothing): A — a single-server write (one-phase commit when
    optimised); B — one writer plus one pure reader (one-phase commit and
    a read-only vote); C — two writers (piggybacked decision at the last
    agent).  Message and latency figures count the commit calls only.
    """
    cluster = Cluster(seed=seed, fast_paths=fast_paths,
                      config=NetworkConfig(min_delay=1.0, max_delay=1.0))
    for name in ("home", "s1", "s2"):
        cluster.add_node(name)
    client = cluster.client("home")
    result = {"commit_messages": 0, "commit_time": 0.0, "commits": 0}

    def run_commit(action):
        before = cluster.network.sent_count
        started = cluster.kernel.now
        yield from client.commit(action)
        result["commit_messages"] += cluster.network.sent_count - before
        result["commit_time"] += cluster.kernel.now - started
        result["commits"] += 1

    def app():
        a = yield from client.create("s1", "counter", value=0)
        b = yield from client.create("s2", "counter", value=0)
        for index in range(6):       # profile A: single-server write
            action = client.top_level(f"A{index}")
            yield from client.invoke(action, a, "increment", 1)
            yield from run_commit(action)
        for index in range(4):       # profile B: one writer + one reader
            action = client.top_level(f"B{index}")
            yield from client.invoke(action, a, "increment", 1)
            yield from client.invoke(action, b, "get")
            yield from run_commit(action)
        for index in range(2):       # profile C: two writers
            action = client.top_level(f"C{index}")
            yield from client.invoke(action, a, "increment", 1)
            yield from client.invoke(action, b, "increment", 1)
            yield from run_commit(action)
        result["a"], result["b"] = a, b

    cluster.run_process("home", app())
    assert _stable_int(cluster, result["a"]) == 12
    assert _stable_int(cluster, result["b"]) == 2
    fast_path_kinds: Dict[str, float] = {}
    for labels, counter in cluster.obs.metrics.series("twopc_fast_path_total"):
        kind = dict(labels).get("kind", "")
        fast_path_kinds[kind] = fast_path_kinds.get(kind, 0) + counter.value
    result["fast_path_kinds"] = fast_path_kinds
    result["piggyback_saved"] = cluster.obs.metrics.value(
        "decision_piggyback_saved_rpcs_total")
    result["read_only_saved_finish"] = sum(
        counter.value for _labels, counter in
        cluster.obs.metrics.series("read_only_saved_finish_total"))
    result["audit_findings"] = len(cluster.obs.auditor.report())
    return result


def scenario_twopc_fastpath(seed: int = 29) -> Dict[str, Any]:
    """Commit-protocol fast paths vs the classic protocol, same workload.

    Runs the A/B/C mix twice — ``fast_paths=False`` then ``True`` — on
    identical seeds and gates the message-count reduction: the piggybacked
    decision, read-only votes and one-phase commits must save at least 30%
    of the commit-path traffic, with zero auditor findings either way.
    """
    classic = _fastpath_mix(seed, fast_paths=False)
    fast = _fastpath_mix(seed, fast_paths=True)
    reduction = 1.0 - fast["commit_messages"] / classic["commit_messages"]
    assert reduction >= 0.30, (classic["commit_messages"],
                               fast["commit_messages"])
    assert classic["audit_findings"] == 0, classic["audit_findings"]
    assert fast["audit_findings"] == 0, fast["audit_findings"]
    kinds = fast["fast_path_kinds"]
    return _document(
        "twopc_fastpath", seed,
        {"profile_a_commits": 6, "profile_b_commits": 4,
         "profile_c_commits": 2, "servers": 2},
        {
            "classic.commit_messages": classic["commit_messages"],
            "classic.commit_time": classic["commit_time"],
            "fast.commit_messages": fast["commit_messages"],
            "fast.commit_time": fast["commit_time"],
            "message_reduction": reduction,
            "fast.one_phase_commits": kinds.get("one_phase", 0),
            "fast.piggyback_commits": kinds.get("piggyback", 0),
            "fast.read_only_votes": kinds.get("read_only", 0),
            "fast.piggyback_saved_rpcs": fast["piggyback_saved"],
            "fast.read_only_saved_finishes": fast["read_only_saved_finish"],
            "classic.audit_findings": classic["audit_findings"],
            "fast.audit_findings": fast["audit_findings"],
        })


# -- commutativity-based coordination avoidance -------------------------------

def _commute_run(seed: int, type_name: str, commute: bool,
                 strict_conservation: bool = True) -> Dict[str, Any]:
    """Six workers hammer two shared objects, every transaction updating
    both: the contention sweep's objects=2 shape.  The arm is selected by
    object type and the commute switch — ``counter`` serializes under
    WRITE locks and commits with classic/fast-path 2PC;
    ``commuting_counter`` runs updates concurrently (compatible groups)
    and, with ``commute=True``, commits fully-commuting colours in one
    local-decision round with no prepare phase.

    ``strict_conservation=False`` is for the commute-off commuting arm:
    snapshot permanence under concurrent compatible updates can lose
    late-promoting effects (the race semantic.py documents as needing
    operation-logged redo — which is what the commute path supplies), so
    that arm reports the shortfall instead of asserting it away.
    """
    cluster = Cluster(seed=seed, lock_wait_timeout=40.0, commute=commute)
    nodes = ("n0", "n1", "n2")
    for name in nodes:
        cluster.add_node(name)
    workers, ops = 6, 5
    refs: List[Any] = []
    outcomes = {"committed": 0, "aborted": 0}

    def setup():
        client = cluster.client("n0")
        for host in ("n1", "n2"):
            ref = yield from client.create(host, type_name, value=0)
            refs.append(ref)

    cluster.run_process("n0", setup())
    method = "add" if type_name == "commuting_counter" else "increment"

    def worker(worker_id: int):
        client = cluster.client(nodes[worker_id % len(nodes)],
                                name=f"w{worker_id}")
        rng = random.Random(seed * 1000 + worker_id)
        for op in range(ops):
            action = client.top_level(f"w{worker_id}.op{op}")
            try:
                for ref in refs:
                    yield from client.invoke(action, ref, method, 1)
                yield from client.commit(action)
                outcomes["committed"] += 1
            except Exception:
                outcomes["aborted"] += 1
                if not action.status.terminated:
                    yield from client.abort(action)
            yield Timeout(1.0 + rng.random())

    messages_before = cluster.network.sent_count
    for worker_id in range(workers):
        cluster.spawn(nodes[worker_id % len(nodes)], worker(worker_id),
                      name=f"worker{worker_id}")
    cluster.run()
    total = sum(_stable_int(cluster, ref) for ref in refs)
    if strict_conservation:
        assert total == outcomes["committed"] * 2, (total, outcomes)
    commute_commits = 0.0
    for labels, counter in cluster.obs.metrics.series("twopc_fast_path_total"):
        if dict(labels).get("kind") == "commute":
            commute_commits += counter.value
    elapsed = cluster.kernel.now
    return {
        "committed": outcomes["committed"],
        "aborted": outcomes["aborted"],
        "elapsed": elapsed,
        "throughput": outcomes["committed"] / elapsed if elapsed else 0.0,
        "messages": cluster.network.sent_count - messages_before,
        "commute_commits": commute_commits,
        "audit_findings": len(cluster.obs.auditor.report()),
        "stable_total": total,
        "lost_updates": outcomes["committed"] * 2 - total,
    }


def scenario_commute_avoidance(seed: int = 37) -> Dict[str, Any]:
    """Coordination avoidance for fully-commuting colours, same workload.

    Three arms on identical seeds: *classic* (plain counters, WRITE locks,
    classic/fast-path 2PC), *commute_off* (commuting counters — concurrent
    execution, but every colour still runs a prepare round) and
    *commute_on* (fully-commuting colours decide locally in one round).
    Gates: the commute path must at least double committed throughput over
    classic 2PC at this contention level, every commute-on commit must
    actually take the commute path, and the auditor must stay silent in
    every arm — in particular its commute-soundness check
    (``commute-decision-not-commuting``) on the arm deciding locally.
    """
    classic = _commute_run(seed, "counter", commute=False)
    off = _commute_run(seed, "commuting_counter", commute=False,
                       strict_conservation=False)
    on = _commute_run(seed, "commuting_counter", commute=True)
    for arm in (classic, off, on):
        assert arm["audit_findings"] == 0, arm
    assert off["commute_commits"] == 0, off
    assert on["commute_commits"] > 0, on
    assert on["lost_updates"] == 0, on
    speedup = on["throughput"] / classic["throughput"]
    assert speedup >= 2.0, (classic, on)
    metrics: Dict[str, float] = {}
    for name, arm in (("classic", classic), ("commute_off", off),
                      ("commute_on", on)):
        metrics[f"{name}.committed"] = arm["committed"]
        metrics[f"{name}.aborted"] = arm["aborted"]
        metrics[f"{name}.elapsed_sim"] = arm["elapsed"]
        metrics[f"{name}.throughput"] = arm["throughput"]
        metrics[f"{name}.messages"] = arm["messages"]
        metrics[f"{name}.audit_findings"] = arm["audit_findings"]
    # the snapshot-permanence shortfall the commute path's operation-
    # logged redo eliminates (commute_on must be exactly zero)
    metrics["commute_off.lost_updates"] = off["lost_updates"]
    metrics["commute_on.lost_updates"] = on["lost_updates"]
    metrics["commute_on.commute_commits"] = on["commute_commits"]
    metrics["throughput_speedup_vs_classic"] = speedup
    return _document(
        "commute_avoidance", seed,
        {"workers": 6, "ops_per_worker": 5, "objects": 2, "servers": 2},
        metrics)


# -- soak smoke ---------------------------------------------------------------

def scenario_soak_smoke(seed: int = 21) -> Dict[str, Any]:
    """Capped-horizon soak-observatory smoke: both arms, gated verdicts.

    Runs the clean and faulty arms of :class:`repro.obs.soak.SoakRunner`
    at a CI-friendly horizon with segment rotation into a scratch
    directory.  Asserts the acceptance contract inline — the clean arm
    must finish with zero SLO breaches and zero findings, the faulty
    arm's seeded network-degradation burst must trip at least the
    commit-latency burn objective — and gates the per-arm outcome counts,
    breach totals and peak retention numbers (all sim-deterministic).
    """
    import tempfile

    from repro.obs.soak import SoakRunner

    horizon, segment_every, interval = 2400.0, 600.0, 10.0
    metrics: Dict[str, float] = {}
    for arm in ("clean", "faulty"):
        with tempfile.TemporaryDirectory() as out:
            runner = SoakRunner(out_dir=out, arm=arm, seed=seed,
                                horizon=horizon,
                                segment_every=segment_every,
                                sample_interval=interval)
            summary = runner.run()
        assert summary["audit_findings"] == 0, summary["audit_findings"]
        if arm == "clean":
            assert summary["breach_total"] == 0, summary["breaches"]
            assert summary["exit_code"] == 0
        else:
            breached = {entry["objective"] for entry in summary["breaches"]}
            assert "commit-latency" in breached, summary["breaches"]
            assert summary["exit_code"] == 2
        assert len(summary["segments"]) >= 4, summary["segments"]
        metrics[f"{arm}.committed"] = summary["committed"]
        metrics[f"{arm}.aborted"] = summary["aborted"]
        metrics[f"{arm}.elapsed_sim"] = summary["elapsed"]
        metrics[f"{arm}.breaches"] = summary["breach_total"]
        metrics[f"{arm}.segments"] = len(summary["segments"])
        metrics[f"{arm}.peak_spans"] = summary["peaks"]["spans"]
        metrics[f"{arm}.peak_audit_events"] = summary["peaks"]["audit_events"]
    return _document(
        "soak_smoke", seed,
        {"horizon": horizon, "segment_every": segment_every,
         "interval": interval, "arms": ["clean", "faulty"]},
        metrics)


# -- realtime backend ---------------------------------------------------------

#: wall seconds per time unit for the scenario's asyncio arms — small
#: enough that both arms finish in well under a second each, large enough
#: that millisecond host jitter stays a fraction of one unit
REALTIME_TIME_SCALE = 0.002


def _realtime_fastpath(backend, seed: int) -> Dict[str, Any]:
    """The sequential A/B/C fast-path mix on an arbitrary backend.

    Single-client and fault-free, so the logical structure is
    deterministic: commit counts, stable values and auditor silence must
    not depend on the backend.  Returns the outcome dict plus wall/sim
    elapsed figures for the info section.
    """
    cluster = Cluster(seed=seed, backend=backend, fast_paths=True)
    for name in ("home", "s1", "s2"):
        cluster.add_node(name)
    client = cluster.client("home")
    refs: Dict[str, Any] = {}
    commits = {"count": 0}

    def app():
        refs["a"] = yield from client.create("s1", "counter", value=0)
        refs["b"] = yield from client.create("s2", "counter", value=0)
        for index in range(6):       # profile A: single-server write
            action = client.top_level(f"A{index}")
            yield from client.invoke(action, refs["a"], "increment", 1)
            yield from client.commit(action)
            commits["count"] += 1
        for index in range(4):       # profile B: one writer + one reader
            action = client.top_level(f"B{index}")
            yield from client.invoke(action, refs["a"], "increment", 1)
            yield from client.invoke(action, refs["b"], "get")
            yield from client.commit(action)
            commits["count"] += 1
        for index in range(2):       # profile C: two writers
            action = client.top_level(f"C{index}")
            yield from client.invoke(action, refs["a"], "increment", 1)
            yield from client.invoke(action, refs["b"], "increment", 1)
            yield from client.commit(action)
            commits["count"] += 1

    started_wall = time.perf_counter()
    started_units = cluster.kernel.now
    cluster.run_process("home", app())
    result = {
        "commits": commits["count"],
        "a": _stable_int(cluster, refs["a"]),
        "b": _stable_int(cluster, refs["b"]),
        "audit_findings": len(cluster.obs.auditor.report()),
        "wall_seconds": time.perf_counter() - started_wall,
        "elapsed_units": cluster.kernel.now - started_units,
    }
    cluster.close()
    return result


def _realtime_commute(backend, seed: int, workers: int = 4,
                      ops: int = 3) -> Dict[str, Any]:
    """Concurrent commuting adds on an arbitrary backend.

    Commuting operations never conflict, so despite real concurrency on
    the asyncio arm every interleaving commits everything through the
    commute fast path: counts and totals are backend-independent.
    """
    cluster = Cluster(seed=seed, backend=backend, commute=True,
                      lock_wait_timeout=60.0)
    nodes = ("n0", "n1", "n2")
    for name in nodes:
        cluster.add_node(name)
    refs: List[Any] = []

    def setup():
        client = cluster.client("n0")
        for host in ("n1", "n2"):
            ref = yield from client.create(host, "commuting_counter", value=0)
            refs.append(ref)

    cluster.run_process("n0", setup())
    outcomes = {"committed": 0, "aborted": 0}

    def worker(wid):
        client = cluster.client(nodes[wid % len(nodes)], name=f"w{wid}")
        rng = random.Random(seed * 1000 + wid)
        for op in range(ops):
            action = client.top_level(f"w{wid}.op{op}")
            try:
                for ref in refs:
                    yield from client.invoke(action, ref, "add", 1)
                yield from client.commit(action)
                outcomes["committed"] += 1
            except Exception:
                outcomes["aborted"] += 1
                if not action.status.terminated:
                    yield from client.abort(action)
            yield Timeout(1.0 + rng.random())

    started_wall = time.perf_counter()
    started_units = cluster.kernel.now
    for wid in range(workers):
        cluster.spawn(nodes[wid % len(nodes)], worker(wid),
                      name=f"worker{wid}")
    cluster.run()
    commute_commits = 0.0
    for labels, counter in cluster.obs.metrics.series("twopc_fast_path_total"):
        if dict(labels).get("kind") == "commute":
            commute_commits += counter.value
    result = {
        "committed": outcomes["committed"],
        "aborted": outcomes["aborted"],
        "total": sum(_stable_int(cluster, ref) for ref in refs),
        "commute_commits": commute_commits,
        "audit_findings": len(cluster.obs.auditor.report()),
        "wall_seconds": time.perf_counter() - started_wall,
        "elapsed_units": cluster.kernel.now - started_units,
    }
    cluster.close()
    return result


def scenario_realtime_backend(seed: int = 29) -> Dict[str, Any]:
    """Backend parity and wall-clock cost of the real-time backend.

    Runs two fault-free arms — the sequential fast-path mix and the
    concurrent commute workload — once on the sim backend and once on
    :class:`AsyncioBackend`, same seeds.  Gated ``metrics`` carry the
    backend-independent outcomes (commit counts, stable values, auditor
    silence) plus explicit 0/1 parity flags; measured wall-clock numbers
    land under ``info`` for the opt-in ``--gate-wall`` arm of the perf
    gate.  ``*_realtime_overhead`` is the asyncio arm's wall time divided
    by the ideal ``sim_elapsed_units * time_scale`` — how much slower
    than perfectly-scaled virtual time the real loop runs.
    """
    logical = ("commits", "a", "b", "committed", "aborted", "total",
               "commute_commits", "audit_findings")

    def outcomes_of(result: Dict[str, Any]) -> Dict[str, Any]:
        return {key: result[key] for key in logical if key in result}

    arms = {
        "fastpath": _realtime_fastpath,
        "commute": _realtime_commute,
    }
    metrics: Dict[str, float] = {}
    info: Dict[str, Any] = {"time_scale": REALTIME_TIME_SCALE}
    for arm, build in arms.items():
        sim = build(None, seed)
        real = build(AsyncioBackend(time_scale=REALTIME_TIME_SCALE), seed)
        assert outcomes_of(sim) == outcomes_of(real), (arm, sim, real)
        assert sim["audit_findings"] == 0, (arm, sim)
        for key, value in outcomes_of(sim).items():
            metrics[f"{arm}.{key}"] = value
        metrics[f"{arm}.parity"] = 1.0
        ideal = sim["elapsed_units"] * REALTIME_TIME_SCALE
        done = real["commits" if arm == "fastpath" else "committed"]
        info[f"sim.{arm}_wall_seconds"] = round(sim["wall_seconds"], 6)
        info[f"asyncio.{arm}_wall_seconds"] = round(real["wall_seconds"], 6)
        info[f"asyncio.{arm}_wall_per_commit"] = round(
            real["wall_seconds"] / max(1, done), 6)
        info[f"asyncio.{arm}_realtime_overhead"] = round(
            real["wall_seconds"] / ideal, 4) if ideal > 0 else 0.0
        info[f"{arm}_sim_elapsed_units"] = round(sim["elapsed_units"], 6)
    return _document(
        "realtime_backend", seed,
        {"arms": sorted(arms), "time_scale": REALTIME_TIME_SCALE,
         "backends": ["sim", "asyncio"]},
        metrics, info)


SCENARIOS: Dict[str, Callable[[], Dict[str, Any]]] = {
    "contention_sweep": scenario_contention_sweep,
    "colour_sweep": scenario_colour_sweep,
    "cluster_fanout": scenario_cluster_fanout,
    "chaos_mix": scenario_chaos_mix,
    "prepare_batching": scenario_prepare_batching,
    "twopc_fastpath": scenario_twopc_fastpath,
    "commute_avoidance": scenario_commute_avoidance,
    "soak_smoke": scenario_soak_smoke,
    "realtime_backend": scenario_realtime_backend,
}


def run_scenarios(out_dir: str,
                  only: Optional[List[str]] = None) -> List[Tuple[str, str]]:
    os.makedirs(out_dir, exist_ok=True)
    written: List[Tuple[str, str]] = []
    for name, build in SCENARIOS.items():
        if only and name not in only:
            continue
        print(f"running scenario {name} ...", flush=True)
        doc = build()
        path = os.path.join(out_dir, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        written.append((name, path))
        print(f"  wrote {path} ({len(doc['metrics'])} gated metrics)")
    return written


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="run perf scenarios and emit BENCH_<scenario>.json")
    parser.add_argument("--out", default=".",
                        help="directory for BENCH_*.json (default: cwd)")
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of scenarios to run")
    args = parser.parse_args(argv)
    unknown = set(args.only or []) - set(SCENARIOS)
    if unknown:
        print(f"error: unknown scenarios {sorted(unknown)} "
              f"(have {sorted(SCENARIOS)})", file=sys.stderr)
        return 1
    run_scenarios(args.out, args.only)
    return 0


if __name__ == "__main__":
    sys.exit(main())
