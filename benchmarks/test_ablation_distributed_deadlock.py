"""A7 — Ablation: distributed deadlock handling.

Cross-server waits-for cycles are invisible to any single lock server.
Compared here: Chandy–Misra–Haas edge-chasing probes (one victim — the
youngest — chosen quickly and consistently; the survivor commits) versus
the timeout-only backstop (both symmetric waiters expire: all work lost,
and only after the full bound).
"""

from bench_util import print_figure

from repro.cluster.cluster import Cluster
from repro.errors import DeadlockDetected, LockTimeout
from repro.sim.kernel import Timeout


def run_cycle(edge_chasing: bool, lock_wait_timeout: float):
    cluster = Cluster(seed=0, edge_chasing=edge_chasing,
                      lock_wait_timeout=lock_wait_timeout,
                      probe_interval=3.0)
    for name in ("home1", "home2", "s1", "s2"):
        cluster.add_node(name)
    c1 = cluster.client("home1", "c1")
    c2 = cluster.client("home2", "c2")
    refs = {}
    results = {}

    def setup():
        refs["obj1"] = yield from c1.create("s1", "counter", value=0)
        refs["obj2"] = yield from c1.create("s2", "counter", value=0)

    def worker(client, label, first, second):
        action = client.top_level(label)
        try:
            yield from client.invoke(action, refs[first], "increment", 1)
            yield Timeout(5.0)
            yield from client.invoke(action, refs[second], "increment", 1)
            yield from client.commit(action)
            results[label] = ("committed", cluster.kernel.now)
        except (DeadlockDetected, LockTimeout) as error:
            results[label] = (type(error).__name__, cluster.kernel.now)
            if not action.status.terminated:
                yield from client.abort(action)

    cluster.run_process("home1", setup())
    start = cluster.kernel.now
    cluster.spawn("home1", worker(c1, "t1", "obj1", "obj2"))
    cluster.spawn("home2", worker(c2, "t2", "obj2", "obj1"))
    cluster.run(until=start + 3 * lock_wait_timeout)
    outcomes = sorted(kind for kind, _ in results.values())
    resolution = max(when for _, when in results.values()) - start
    return {
        "outcomes": outcomes,
        "resolution_time": resolution,
        "survivor_committed": "committed" in outcomes,
    }


def run_both():
    return {
        "edge chasing": run_cycle(edge_chasing=True, lock_wait_timeout=600.0),
        "timeout only": run_cycle(edge_chasing=False, lock_wait_timeout=100.0),
    }


def test_ablation_distributed_deadlock(benchmark):
    results = benchmark.pedantic(run_both, rounds=2, iterations=1)
    chasing = results["edge chasing"]
    timeout = results["timeout only"]
    assert chasing["outcomes"] == ["DeadlockDetected", "committed"]
    assert chasing["survivor_committed"] is True
    assert timeout["outcomes"] == ["LockTimeout", "LockTimeout"]
    assert timeout["survivor_committed"] is False
    # probes resolve well before even a *short* timeout bound would
    assert chasing["resolution_time"] < timeout["resolution_time"]
    print_figure(
        "A7 — cross-server deadlock: probes vs timeouts",
        [
            (label, ", ".join(m["outcomes"]), f"{m['resolution_time']:.1f}",
             m["survivor_committed"])
            for label, m in results.items()
        ],
        headers=("scheme", "outcomes", "resolution time", "work survived"),
    )
