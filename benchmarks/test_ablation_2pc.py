"""A4 — Ablation: two-phase commit under message loss and crashes (§2).

The substrate claims: distributed actions stay atomic across object
servers despite lost/duplicated messages, and a participant crash between
prepare and decision resolves correctly from the logs.  The benchmark
sweeps network loss rates and reports commit latency and message cost.
"""

from bench_util import emit_metrics_dump, print_figure

from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkConfig
from repro.objects.state import ObjectState

DROP_RATES = (0.0, 0.1, 0.3)
TRANSFERS = 5


def committed_int(cluster, ref):
    stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
    return ObjectState.from_bytes(stored.payload).unpack_int()


def run_at_drop_rate(drop):
    cluster = Cluster(
        seed=17,
        config=NetworkConfig(drop_probability=drop, duplicate_probability=0.05),
        rpc_retries=12,          # heavy loss needs a deep retransmission budget
        lock_wait_timeout=300.0,  # ... and patient lock waits: a predecessor's
                                  # commit messages may themselves be delayed
    )
    for node in ("coord", "left", "right"):
        cluster.add_node(node)
    client = cluster.client("coord")
    result = {}

    def app():
        src = yield from client.create("left", "counter", value=100)
        dst = yield from client.create("right", "counter", value=0)
        start = cluster.kernel.now
        for index in range(TRANSFERS):
            action = client.top_level(f"transfer{index}")
            yield from client.invoke(action, src, "decrement", 10)
            yield from client.invoke(action, dst, "increment", 10)
            yield from client.commit(action)
        result["latency"] = (cluster.kernel.now - start) / TRANSFERS
        return src, dst

    src, dst = cluster.run_process("coord", app())
    emit_metrics_dump(f"ablation_2pc_drop{drop:.2f}", cluster)
    total = committed_int(cluster, src) + committed_int(cluster, dst)
    return {
        "drop": drop,
        "atomic": total == 100 and committed_int(cluster, dst) == TRANSFERS * 10,
        "avg_latency": result["latency"],
        "messages": cluster.network.sent_count,
    }


def sweep():
    return [run_at_drop_rate(drop) for drop in DROP_RATES]


def test_ablation_2pc_under_loss(benchmark):
    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    for row in rows:
        assert row["atomic"], f"atomicity violated at drop={row['drop']}"
    # loss costs messages and latency, monotonically in the sweep
    assert rows[0]["messages"] < rows[-1]["messages"]
    assert rows[0]["avg_latency"] <= rows[-1]["avg_latency"]
    print_figure(
        "A4 — distributed transfers under message loss (5 transfers each)",
        [(f"{row['drop']:.0%}", row["atomic"], f"{row['avg_latency']:.1f}",
          row["messages"]) for row in rows],
        headers=("drop rate", "atomicity held", "avg commit latency",
                 "total messages"),
    )
