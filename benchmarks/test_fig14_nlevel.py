"""F14 — Fig. 14: n-level independent actions, the full survival matrix.

"If A aborts, any effects of D, B and E will be undone; on the other hand
if B aborts after invoking E, the effects of E will not be undone."
C and F are top-level independent: they always survive.
"""

from bench_util import print_figure

from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter


def episode(b_aborts: bool, a_aborts: bool):
    runtime = LocalRuntime()
    red = runtime.colours.fresh("red")
    blue = runtime.colours.fresh("blue")
    green = runtime.colours.fresh("green")
    effects = {name: Counter(runtime, value=0) for name in "BCDEF"}
    try:
        with runtime.coloured([red, blue], name="A") as a:
            with runtime.coloured([green], parent=a, name="C") as c:
                effects["C"].increment(1, action=c)
            try:
                with runtime.coloured([red], parent=a, name="B") as b:
                    effects["B"].increment(1, colour=red, action=b)
                    with runtime.coloured([red], parent=b, name="D") as d:
                        effects["D"].increment(1, action=d)
                    with runtime.coloured([blue], parent=b, name="E") as e:
                        effects["E"].increment(1, action=e)
                    with runtime.coloured([green], parent=b, name="F") as f:
                        effects["F"].increment(1, action=f)
                    if b_aborts:
                        raise RuntimeError("B aborts")
            except RuntimeError:
                pass
            if a_aborts:
                raise RuntimeError("A aborts")
    except RuntimeError:
        pass
    return {name: counter.value for name, counter in effects.items()}


def run_matrix():
    return {
        "all commit": episode(b_aborts=False, a_aborts=False),
        "B aborts (after invoking E)": episode(True, False),
        "A aborts": episode(False, True),
        "B aborts then A aborts": episode(True, True),
    }


def test_fig14_survival_matrix(benchmark):
    matrix = benchmark(run_matrix)
    assert matrix["all commit"] == {"B": 1, "C": 1, "D": 1, "E": 1, "F": 1}
    # B's abort: D and B's own work undone; E survives (second-level); C, F safe
    assert matrix["B aborts (after invoking E)"] == {
        "B": 0, "C": 1, "D": 0, "E": 1, "F": 1,
    }
    # A's abort: D, B, E undone; C, F (green: true top-level) survive
    assert matrix["A aborts"] == {"B": 0, "C": 1, "D": 0, "E": 0, "F": 1}
    assert matrix["B aborts then A aborts"] == {
        "B": 0, "C": 1, "D": 0, "E": 0, "F": 1,
    }
    rows = [
        (label, *(effects[name] for name in "BCDEF"))
        for label, effects in matrix.items()
    ]
    print_figure(
        "Fig. 14 — n-level independence survival matrix (1 = effect survives)",
        rows,
        headers=("scenario", "B", "C", "D", "E", "F"),
    )
