"""Shared helpers for the per-figure benchmark harness.

Every benchmark both *times* its scenario (pytest-benchmark) and *checks
the paper's qualitative claim* (assertions on the returned metrics), then
prints the rows it reproduced so ``pytest benchmarks/ --benchmark-only -s``
regenerates the figure data.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, Iterable, List, Sequence


def emit_metrics_dump(name: str, cluster) -> None:
    """Write the cluster's metrics registry next to the figure output.

    Opt-in: set ``REPRO_OBS_DUMP`` to a directory and each benchmark that
    calls this drops a ``<name>.metrics.json`` there for offline analysis
    with ``python -m repro.obs.report``.
    """
    out_dir = os.environ.get("REPRO_OBS_DUMP")
    if not out_dir:
        return
    os.makedirs(out_dir, exist_ok=True)
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", name)
    path = os.path.join(out_dir, f"{slug}.metrics.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(cluster.metrics_dump(), fh, indent=2, sort_keys=True)


def print_figure(title: str, rows: Iterable[Sequence[Any]],
                 headers: Sequence[str]) -> None:
    """Render one figure's data as an aligned text table."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n### {title}")
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def outcome_row(label: str, metrics: Dict[str, Any]) -> List[Any]:
    return [label] + [metrics[key] for key in sorted(metrics)]
