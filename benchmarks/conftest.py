"""Benchmark suite configuration."""

import sys
from pathlib import Path

# make bench_util importable when pytest runs from the repo root
sys.path.insert(0, str(Path(__file__).parent))
