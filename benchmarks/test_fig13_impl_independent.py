"""F13 — Fig. 13: independent actions via colours, and the deadlock contrast.

Fig. 13(a): A synchronously invokes a *genuinely separate* top-level B
that needs objects A has locked — A waits for B, B waits for A's locks:
deadlock (broken here by the lock-wait bound).  Fig. 13(b): the coloured
implementation nests B inside A with a fresh colour, so B acquires past
A's (read) locks and both finish.
"""

import threading

from bench_util import print_figure

from repro.errors import LockTimeout
from repro.locking.modes import LockMode
from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter
from repro.structures import independent_top_level


def fig13a_episode():
    """True top-levels: the invocation deadlocks; measure the damage."""
    runtime = LocalRuntime()
    shared = Counter(runtime, value=0)
    result = {}

    def invoked_b():
        # B is NOT nested in A: a plain top-level action
        try:
            with independent_top_level(runtime, use_ambient_parent=False,
                                       name="B") as b:
                runtime.acquire(b, shared, LockMode.WRITE, timeout=0.3)
                shared.value += 10
        except LockTimeout:
            result["b"] = "lock timeout (deadlock broken by bound)"

    with runtime.top_level(name="A"):
        shared.increment(1)     # A write-locks shared
        worker = threading.Thread(target=invoked_b)
        worker.start()
        worker.join(10)         # A waits for B -> the deadlock of fig 13(a)
    result["completed_both"] = shared.value == 11
    return result


def fig13b_episode():
    """Coloured implementation: B nested under A with a fresh colour."""
    runtime = LocalRuntime()
    read_by_a = Counter(runtime, value=0)
    written_by_a = Counter(runtime, value=0)
    with runtime.top_level(name="A"):
        read_by_a.get()                 # A read-locks
        written_by_a.increment(1)       # A write-locks
        with independent_top_level(runtime, name="B") as b:
            read_by_a.increment(10, action=b)          # write past A's READ
            seen = written_by_a.get(action=b)          # read past A's WRITE
    return {
        "b_completed": read_by_a.value == 10,
        "b_read_a_write": seen == 1,
    }


def run_both():
    return {"fig 13(a)": fig13a_episode(), "fig 13(b)": fig13b_episode()}


def test_fig13_independent_implementation(benchmark):
    results = benchmark.pedantic(run_both, rounds=3, iterations=1)
    a = results["fig 13(a)"]
    assert a["completed_both"] is False          # the deadlock bit
    assert "timeout" in a.get("b", "")
    b = results["fig 13(b)"]
    assert b["b_completed"] is True
    assert b["b_read_a_write"] is True
    print_figure(
        "Fig. 13 — true top-level vs coloured independent action",
        [
            ("13(a) genuine top-level B", "deadlocks (bounded wait fired)"),
            ("13(b) coloured B nested in A", "both complete"),
        ],
        headers=("structure", "outcome"),
    )
