"""A1 — Ablation: naive early lock release vs glued actions (§3.2).

"One possible method of increasing concurrency is … early release of
locks, but this method can cause a cascade of actions to be aborted if the
releasing action aborts.  Glued actions provide a control structure for
releasing locks on objects without the possibility of the cascade aborts."

Naive mode (simulated by force-releasing a transaction's locks before it
finishes): a reader picks up the uncommitted value; when the writer
aborts, every such reader is dirty and must cascade-abort.  Glued mode:
the hand-over happens only at commit — dirty reads are impossible by
construction.
"""

from bench_util import print_figure

from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter
from repro.structures import GluedGroup

N_READERS = 5


def naive_early_release():
    runtime = LocalRuntime()
    shared = Counter(runtime, value=0)
    dirty_readers = 0
    scope = runtime.top_level(name="T1")
    with scope as t1:
        shared.increment(99, action=t1)      # uncommitted write
        # naive early release: T1 gives up its locks before finishing
        runtime.locks.release_action(t1.uid)
        for index in range(N_READERS):
            with runtime.top_level(name=f"R{index}") as reader:
                value = shared.get(action=reader)
                if value != 0:
                    dirty_readers += 1       # read uncommitted data
        runtime.abort_action(t1)             # ... and then T1 aborts
    return {
        "dirty_readers": dirty_readers,
        "cascade_aborts_required": dirty_readers,
        "final_value": shared.value,
    }


def glued_release():
    runtime = LocalRuntime()
    shared = Counter(runtime, value=0)
    side = Counter(runtime, value=0)
    dirty_readers = 0
    glue = GluedGroup(runtime, name="glue")
    try:
        with glue.member(name="T1") as member:
            shared.increment(99, action=member.action)
            member.hand_over(shared)
            # other objects (side) would be released here at commit; but T1
            # fails before committing:
            raise RuntimeError("T1 aborts")
    except RuntimeError:
        pass
    for index in range(N_READERS):
        with runtime.top_level(name=f"R{index}") as reader:
            if shared.get(action=reader) != 0:
                dirty_readers += 1
    glue.close()
    return {
        "dirty_readers": dirty_readers,
        "cascade_aborts_required": dirty_readers,
        "final_value": shared.value,
    }


def run_both():
    return {
        "naive early release": naive_early_release(),
        "glued actions": glued_release(),
    }


def test_ablation_cascade_aborts(benchmark):
    results = benchmark(run_both)
    naive = results["naive early release"]
    glued = results["glued actions"]
    assert naive["dirty_readers"] == N_READERS       # everyone saw dirt
    assert naive["cascade_aborts_required"] == N_READERS
    assert glued["dirty_readers"] == 0               # impossible by design
    assert glued["final_value"] == 0                 # abort fully recovered
    print_figure(
        "A1 — cascade aborts: naive early release vs gluing",
        [(label, m["dirty_readers"], m["cascade_aborts_required"])
         for label, m in results.items()],
        headers=("scheme", f"dirty readers (of {N_READERS})",
                 "cascade aborts required"),
    )
