"""A9 — Ablation: bystander throughput under the §3 structures, measured.

The quantitative version of figs. 4/5.  A pipeline touches all of O
(|O| = 8), selects P (|P| = 2), then runs a long computation (300 sim
units) before using P.  Meanwhile bystander clients continuously update
objects in O−P.  Measured: bystander transactions completed before the
pipeline finishes, under three structures:

- one enclosing atomic action (everything locked, fully failure-atomic);
- a serializing action (everything retained by the control action);
- glued actions (only P pinned after phase 1).

Expected shape: glued ≈ unobstructed bystander throughput; serializing and
nested ≈ zero.  This is the paper's central concurrency argument with
numbers attached.
"""

from bench_util import print_figure

from repro.cluster.cluster import Cluster
from repro.cluster.structures import ClusterGluedGroup, ClusterSerializingAction
from repro.sim.kernel import Timeout

O_SIZE, P_SIZE = 8, 2
THINK_TIME = 300.0
BYSTANDERS = 2


def build(seed=0):
    cluster = Cluster(seed=seed, lock_wait_timeout=10_000.0)
    cluster.add_node("pipeline-node")
    cluster.add_node("store")
    for i in range(BYSTANDERS):
        cluster.add_node(f"by{i}")
    client = cluster.client("pipeline-node")
    refs = {}

    def setup():
        for i in range(O_SIZE):
            refs[i] = yield from client.create("store", "counter", value=0)

    cluster.run_process("pipeline-node", setup())
    return cluster, client, refs


def bystander_loop(cluster, client, refs, stop_flag, completed):
    index = 0
    while not stop_flag["stop"]:
        target = refs[P_SIZE + (index % (O_SIZE - P_SIZE))]  # O−P objects
        action = client.top_level(f"by-{client.name}-{index}")
        try:
            yield from client.invoke(action, target, "increment", 1)
            yield from client.commit(action)
            completed.append(cluster.kernel.now)
        except Exception:
            if not action.status.terminated:
                yield from client.abort(action)
        index += 1
        yield Timeout(1.0)


def run_structure(kind: str):
    cluster, client, refs = build()
    stop_flag = {"stop": False}
    completed = []
    window = {}

    def think():
        window["start"] = cluster.kernel.now
        yield Timeout(THINK_TIME)
        window["end"] = cluster.kernel.now

    def pipeline():
        if kind == "nested":
            top = client.top_level("pipeline")
            phase1 = client.atomic(top, "phase1")
            for i in range(O_SIZE):
                yield from client.invoke(phase1, refs[i], "increment", 1)
            yield from client.commit(phase1)
            yield from think()
            phase2 = client.atomic(top, "phase2")
            for i in range(P_SIZE):
                yield from client.invoke(phase2, refs[i], "increment", 1)
            yield from client.commit(phase2)
            yield from client.commit(top)
        elif kind == "serializing":
            ser = ClusterSerializingAction(client, name="pipeline")
            phase1 = ser.constituent("phase1")

            def body1():
                for i in range(O_SIZE):
                    yield from client.invoke(phase1, refs[i], "increment", 1)

            yield from ser.run_constituent(phase1, body1())
            yield from think()
            phase2 = ser.constituent("phase2")

            def body2():
                for i in range(P_SIZE):
                    yield from client.invoke(phase2, refs[i], "increment", 1)

            yield from ser.run_constituent(phase2, body2())
            yield from ser.close()
        else:  # glued
            glue = ClusterGluedGroup(client, name="pipeline")
            phase1 = glue.member("phase1")

            def body1():
                for i in range(O_SIZE):
                    yield from client.invoke(phase1, refs[i], "increment", 1)
                yield from glue.hand_over(
                    phase1, *(refs[i] for i in range(P_SIZE))
                )

            yield from client.run_scope(phase1, body1())
            yield from think()
            phase2 = glue.member("phase2")

            def body2():
                for i in range(P_SIZE):
                    yield from client.invoke(phase2, refs[i], "increment", 1)

            yield from client.run_scope(phase2, body2())
            yield from glue.close()
        stop_flag["stop"] = True

    handle = cluster.spawn("pipeline-node", pipeline())
    for i in range(BYSTANDERS):
        by_client = cluster.client(f"by{i}", f"by{i}")
        cluster.spawn(f"by{i}", bystander_loop(
            cluster, by_client, refs, stop_flag, completed
        ))
    cluster.run(until=20_000.0)
    assert not handle.alive and handle.error is None, handle.error
    during = [t for t in completed
              if window["start"] <= t <= window["end"]]
    return {"kind": kind, "commits_during_think": len(during),
            "commits_total": len(completed)}


def run_all():
    return [run_structure(kind) for kind in ("nested", "serializing", "glued")]


def test_ablation_contention(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    by_kind = {row["kind"]: row for row in rows}
    # nested/serializing: O−P locked for the whole think window -> zero
    assert by_kind["nested"]["commits_during_think"] == 0
    assert by_kind["serializing"]["commits_during_think"] == 0
    # glued: O−P free during the long computation
    assert by_kind["glued"]["commits_during_think"] >= 20
    print_figure(
        "A9 — bystander commits during the pipeline's long computation "
        f"(think time {THINK_TIME:.0f}, {BYSTANDERS} bystanders)",
        [(k, row["commits_during_think"], row["commits_total"])
         for k, row in by_kind.items()],
        headers=("structure", "during think window", "whole episode"),
    )
