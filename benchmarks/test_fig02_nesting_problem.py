"""F2 — Fig. 2: the motivating problem with nesting.

Claim reproduced: "If B terminates successfully but a failure prevents
completion of A, then A will be aborted, thereby undoing the effects of B
and C" — B's long computation is wasted.  The benchmark quantifies the
wasted work (operations undone per failed episode).
"""

from bench_util import print_figure

from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter

B_WORK = 50  # "some long and complicated computation" — 50 updates


def fig2_episode():
    runtime = LocalRuntime()
    objects_b = [Counter(runtime, value=0) for _ in range(B_WORK)]
    work_done_by_b = 0
    work_surviving = 0
    try:
        with runtime.top_level(name="A"):
            with runtime.atomic(name="B") as b:
                for counter in objects_b:
                    counter.increment(1, action=b)
                    work_done_by_b += 1
            raise RuntimeError("failure prevents completion of A")
    except RuntimeError:
        pass
    work_surviving = sum(counter.value for counter in objects_b)
    return {"done_by_B": work_done_by_b, "surviving": work_surviving}


def test_fig02_nesting_undoes_completed_work(benchmark):
    metrics = benchmark(fig2_episode)
    assert metrics["done_by_B"] == B_WORK
    assert metrics["surviving"] == 0   # all of B's completed work was undone
    print_figure(
        "Fig. 2 — nested B's completed work is lost when A aborts",
        [("plain nesting", metrics["done_by_B"], metrics["surviving"])],
        headers=("structure", "updates completed by B", "updates surviving A's abort"),
    )
