"""F11 — Fig. 11: the colouring scheme that implements serializing actions.

Verifies the *scheme itself*, lock by lock (§5.3): B writes W in the data
colour and shadows it with EXCLUSIVE_READ in the control colour; reads of
R are shadowed as READ; at B's commit the data colour commits top-level
and the control-coloured shadows are inherited by A; C then acquires past
them; A never writes, so its abort recovers nothing — behaviourally
identical to the abstract serializing action of F3.
"""

from bench_util import print_figure

from repro.locking.modes import LockMode
from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter
from repro.structures import SerializingAction


def scheme_episode():
    runtime = LocalRuntime()
    w = Counter(runtime, value=0)   # updated by B
    r = Counter(runtime, value=7)   # only read by B
    checkpoints = {}
    ser = SerializingAction(runtime, name="A")
    control_uid = ser.control.uid
    with ser.constituent(name="B") as b:
        w.increment(1, action=b)
        r.get(action=b)
        data_colour = b.default_colour
        control_colour = ser.control_colour
        checkpoints["b_write_in_data_colour"] = runtime.locks.holds(
            b.uid, w.uid, LockMode.WRITE, colour=data_colour
        )
        checkpoints["b_shadow_er_in_control_colour"] = runtime.locks.holds(
            b.uid, w.uid, LockMode.EXCLUSIVE_READ, colour=control_colour
        )
        checkpoints["b_read_shadow_in_control_colour"] = runtime.locks.holds(
            b.uid, r.uid, LockMode.READ, colour=control_colour
        )
    # after B's commit
    checkpoints["a_inherits_er_on_w"] = runtime.locks.holds(
        control_uid, w.uid, LockMode.EXCLUSIVE_READ, colour=ser.control_colour
    )
    checkpoints["a_inherits_read_on_r"] = runtime.locks.holds(
        control_uid, r.uid, LockMode.READ, colour=ser.control_colour
    )
    checkpoints["w_stable_at_b_commit"] = (
        runtime.store.read_committed(w.uid).payload == w.snapshot()
    )
    with ser.constituent(name="C") as c:
        checkpoints["c_acquires_w_past_a"] = bool(w.increment(10, action=c) == 11)
    ser.cancel()  # A aborts; nothing to recover
    checkpoints["w_after_a_abort"] = w.value
    checkpoints["a_wrote_nothing"] = ser.control.written_objects() == {}
    return checkpoints


def test_fig11_scheme(benchmark):
    checkpoints = benchmark(scheme_episode)
    expected_true = [
        "b_write_in_data_colour",
        "b_shadow_er_in_control_colour",
        "b_read_shadow_in_control_colour",
        "a_inherits_er_on_w",
        "a_inherits_read_on_r",
        "w_stable_at_b_commit",
        "c_acquires_w_past_a",
        "a_wrote_nothing",
    ]
    for key in expected_true:
        assert checkpoints[key] is True, key
    assert checkpoints["w_after_a_abort"] == 11
    print_figure(
        "Fig. 11 — colouring scheme for serializing actions",
        [(key.replace("_", " "), checkpoints[key]) for key in expected_true]
        + [("w after A aborts (B+C survive)", checkpoints["w_after_a_abort"])],
        headers=("lock-level property", "observed"),
    )
