"""F15 — Fig. 15: the colour assignment implementing fig. 14, generated
automatically by the structures layer.

The paper's scheme: A {red, blue}, B {red}, C {green}, D {red}, E {blue},
F {green}.  Our API: C and F come from ``independent_top_level`` (fresh
colour each — the role green plays), E from ``independent_relative_to``
anchored at A (the marker plays blue), B and D are ordinary nested/red.
The benchmark checks the generated assignment has exactly the paper's
structure, then replays the fig. 14 semantics through it.
"""

from bench_util import print_figure

from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter
from repro.structures import (
    independence_markers,
    independent_relative_to,
    independent_top_level,
)


def episode():
    runtime = LocalRuntime()
    (marker,) = independence_markers(runtime, 1, name="blue")
    red = runtime.colours.fresh("red")
    effects = {name: Counter(runtime, value=0) for name in "CDEF"}
    assignment = {}
    try:
        with runtime.coloured([red, marker], name="A") as a:
            assignment["A"] = a.colours
            with independent_top_level(runtime, parent=a, name="C") as c:
                assignment["C"] = c.colours
                effects["C"].increment(1, action=c)
            try:
                with runtime.coloured([red], parent=a, name="B") as b:
                    assignment["B"] = b.colours
                    with runtime.coloured([red], parent=b, name="D") as d:
                        assignment["D"] = d.colours
                        effects["D"].increment(1, action=d)
                    with independent_relative_to(runtime, a, parent=b,
                                                 name="E") as e:
                        assignment["E"] = e.colours
                        effects["E"].increment(1, action=e)
                    with independent_top_level(runtime, parent=b,
                                               name="F") as f:
                        assignment["F"] = f.colours
                        effects["F"].increment(1, action=f)
                    raise RuntimeError("B aborts")
            except RuntimeError:
                pass
            e_after_b = effects["E"].value
            raise RuntimeError("A aborts")
    except RuntimeError:
        pass
    return {
        "assignment": assignment,
        "e_after_b_abort": e_after_b,
        "survivors": {name: counter.value for name, counter in effects.items()},
        "marker": marker,
        "red": red,
    }


def test_fig15_generated_assignment(benchmark):
    result = benchmark(episode)
    colours = result["assignment"]
    red, marker = result["red"], result["marker"]
    # the paper's structure, generated automatically:
    assert colours["A"] == frozenset((red, marker))      # A {red, blue}
    assert colours["B"] == frozenset((red,))             # B {red}
    assert colours["D"] == frozenset((red,))             # D {red}
    assert colours["E"] == frozenset((marker,))          # E {blue}
    assert len(colours["C"]) == 1 and not (colours["C"] & colours["A"])  # C {green}
    assert len(colours["F"]) == 1 and not (
        colours["F"] & (colours["A"] | colours["B"]))                    # F {green'}
    # and it reproduces fig. 14's semantics:
    assert result["e_after_b_abort"] == 1                # E survives B
    assert result["survivors"] == {"C": 1, "D": 0, "E": 0, "F": 1}
    print_figure(
        "Fig. 15 — automatically generated colour assignment",
        [(name, "{" + ", ".join(sorted(str(c) for c in cs)) + "}")
         for name, cs in sorted(result["assignment"].items())],
        headers=("action", "colours"),
    )
