"""F9 — Fig. 9: the meeting scheduler's glued rounds.

Reproduced claims: the pinned slot set shrinks monotonically round by
round ("meeting slots not found acceptable are released … thereby ensuring
that entries in diaries are not unnecessarily kept locked"), rejected slots
are immediately available to outsiders, and a crash between rounds loses
no committed narrowing.
"""

from bench_util import print_figure

from repro.apps.meeting.scheduler import MeetingScheduler, SchedulerCrash
from repro.errors import LockTimeout
from repro.locking.modes import LockMode
from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Diary

DATES = [f"d{i:02d}" for i in range(10)]
PREFERENCES = [DATES[:8], DATES[2:7], DATES[3:6]]
PEOPLE = ("ann", "bob", "cat")


def scheduling_episode():
    runtime = LocalRuntime()
    diaries = [Diary(runtime, person, DATES) for person in PEOPLE]
    scheduler = MeetingScheduler(runtime, diaries)
    chosen = scheduler.schedule("review", PREFERENCES)
    pinned_per_round = [len(r.kept) for r in scheduler.rounds]
    booked = sum(
        1 for diary in diaries for date in diary.dates()
        if diary.slot(date).booked
    )
    return {
        "chosen": chosen,
        "pinned_per_round": pinned_per_round,
        "slots_booked": booked,
    }


def crash_episode():
    runtime = LocalRuntime()
    diaries = [Diary(runtime, person, DATES) for person in PEOPLE]
    scheduler = MeetingScheduler(runtime, diaries, fail_after_round=2)
    crashed = False
    try:
        scheduler.schedule("review", PREFERENCES)
    except SchedulerCrash:
        crashed = True
    surviving = list(scheduler.rounds[-1].kept)
    # rejected slots are already free; survivors still pinned
    rejected_free = 0
    with runtime.top_level(name="outsider") as outsider:
        for date in scheduler.rounds[-1].released:
            try:
                runtime.acquire(outsider, diaries[0].slot(date),
                                LockMode.WRITE, timeout=0.01)
                rejected_free += 1
            except LockTimeout:
                pass
        survivor_pinned = False
        try:
            runtime.acquire(outsider, diaries[0].slot(surviving[0]),
                            LockMode.WRITE, timeout=0.01)
        except LockTimeout:
            survivor_pinned = True
        runtime.abort_action(outsider)
    scheduler.release_pins()
    return {
        "crashed": crashed,
        "surviving_narrowing": surviving,
        "rejected_free": rejected_free,
        "rejected_total": len(scheduler.rounds[-1].released),
        "survivor_pinned": survivor_pinned,
    }


def run_both():
    return {"normal": scheduling_episode(), "crash": crash_episode()}


def test_fig09_meeting(benchmark):
    results = benchmark(run_both)
    normal = results["normal"]
    pins = normal["pinned_per_round"]
    # monotone narrowing until the single booked date
    assert all(a >= b for a, b in zip(pins, pins[1:]))
    assert pins[-1] == 1
    assert normal["slots_booked"] == len(PEOPLE)
    crash = results["crash"]
    assert crash["crashed"] is True
    assert crash["surviving_narrowing"] == DATES[2:7]  # round 2's result
    assert crash["rejected_free"] == crash["rejected_total"]
    assert crash["survivor_pinned"] is True
    print_figure(
        "Fig. 9 — glued scheduling rounds",
        [
            ("pinned slots per round (I1..In)",
             " -> ".join(str(p) for p in pins)),
            ("chosen date", normal["chosen"]),
            ("crash after round 2: surviving narrowing",
             f"{len(crash['surviving_narrowing'])} dates"),
            ("rejected slots free during the run",
             f"{crash['rejected_free']}/{crash['rejected_total']}"),
        ],
        headers=("measure", "value"),
    )
