"""F5 — Fig. 5: glued actions get both properties at once (§3.2).

Same scenario as F4; gluing A to B protects P (locks pass atomically)
while releasing O−P at A's commit, and A's effects on P are not recovered
when B fails.  Expected shape versus F4: glued dominates fig. 4(b) on
bystander availability with identical protection, and dominates fig. 4(a)
on protection with identical availability.
"""

from bench_util import print_figure

from repro.errors import LockTimeout
from repro.locking.modes import LockMode
from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter
from repro.structures import GluedGroup

O_SIZE, P_SIZE = 10, 3


def probe_access(runtime, objects):
    accessible = 0
    for obj in objects:
        with runtime.top_level(name="probe") as probe:
            try:
                runtime.acquire(probe, obj, LockMode.WRITE, timeout=0.01)
                accessible += 1
            except LockTimeout:
                pass
            runtime.abort_action(probe)
    return accessible


def glued_episode(b_fails: bool):
    runtime = LocalRuntime()
    objects = [Counter(runtime, value=0) for _ in range(O_SIZE)]
    p, o_minus_p = objects[:P_SIZE], objects[P_SIZE:]
    glue = GluedGroup(runtime, name="glue")
    with glue.member(name="A") as member:
        for obj in objects:
            obj.increment(1, action=member.action)
        member.hand_over(*p)
    p_writable = probe_access(runtime, p)
    rest_writable = probe_access(runtime, o_minus_p)
    try:
        with glue.member(name="B") as member:
            values = [obj.get(action=member.action) for obj in p]
            for obj in p:
                obj.increment(10, action=member.action)
            if b_fails:
                raise RuntimeError("B fails")
    except RuntimeError:
        pass
    glue.close()
    return {
        "p_protected": p_writable == 0,
        "rest_accessible": rest_writable,
        "b_saw_interference": any(v != 1 for v in values),
        "a_effects_on_p": sum(1 for obj in p if obj.value >= 1),
    }


def run_both():
    return {"glued (B commits)": glued_episode(False),
            "glued (B fails)": glued_episode(True)}


def test_fig05_glued(benchmark):
    results = benchmark(run_both)
    for metrics in results.values():
        assert metrics["p_protected"] is True                    # like fig 4(b)
        assert metrics["rest_accessible"] == O_SIZE - P_SIZE     # like fig 4(a)
        assert metrics["b_saw_interference"] is False
    # "The effects of A on P should not be recovered if B fails."
    assert results["glued (B fails)"]["a_effects_on_p"] == P_SIZE
    print_figure(
        "Fig. 5 — glued actions: protection AND availability",
        [(label, m["p_protected"], m["rest_accessible"], m["a_effects_on_p"])
         for label, m in results.items()],
        headers=("episode", "P protected",
                 f"of {O_SIZE - P_SIZE} O-P objects free",
                 "A's surviving effects on P"),
    )
