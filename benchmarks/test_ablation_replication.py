"""A5 — Ablation: replicated name server availability (§2, §4(ii)).

Read-one/write-all over three replicas: lookups survive any minority (and
even 2-of-3) of crashed replicas; writes need all replicas up.  The
benchmark measures lookup availability as replicas fail one by one.
"""

from bench_util import print_figure

from repro.cluster.cluster import Cluster
from repro.errors import RpcTimeout
from repro.replication.nameserver import ReplicatedNameServer

REPLICAS = ("r1", "r2", "r3")


def availability_sweep():
    cluster = Cluster(seed=5)
    cluster.add_node("client-node")
    for name in REPLICAS:
        cluster.add_node(name)
    client = cluster.client("client-node")
    ns_holder = {}

    def setup():
        ns = yield from ReplicatedNameServer.create(client, list(REPLICAS))
        yield from ns.bind("service", "address-1")
        ns_holder["ns"] = ns

    cluster.run_process("client-node", setup())
    ns = ns_holder["ns"]
    rows = []
    for down_count in range(len(REPLICAS) + 1):
        for name in REPLICAS[:down_count]:
            cluster.crash(name)

        def probe():
            try:
                value = yield from ns.lookup("service")
                # earlier rounds may have re-bound it; any address counts
                lookup_ok = isinstance(value, str) and value.startswith("address-")
            except Exception:
                lookup_ok = False
            try:
                yield from ns.bind("service", f"address-{down_count + 2}")
                write_ok = True
            except Exception:
                write_ok = False
            return lookup_ok, write_ok

        lookup_ok, write_ok = cluster.run_process("client-node", probe())
        rows.append({
            "down": down_count,
            "lookup_available": lookup_ok,
            "write_available": write_ok,
        })
        for name in REPLICAS[:down_count]:
            cluster.restart(name)
        cluster.run(until=cluster.kernel.now + 100)  # let recovery settle
    return rows


def test_ablation_replication_availability(benchmark):
    rows = benchmark.pedantic(availability_sweep, rounds=1, iterations=1)
    by_down = {row["down"]: row for row in rows}
    assert by_down[0]["lookup_available"] and by_down[0]["write_available"]
    assert by_down[1]["lookup_available"]          # read-one survives
    assert not by_down[1]["write_available"]       # write-all does not
    assert by_down[2]["lookup_available"]
    assert not by_down[3]["lookup_available"]      # nothing left to read
    print_figure(
        "A5 — name-server availability vs crashed replicas (of 3)",
        [(row["down"], row["lookup_available"], row["write_available"])
         for row in rows],
        headers=("replicas down", "lookup available", "bind available"),
    )
