"""F1 — Fig. 1: concurrent nested atomic actions.

Claim reproduced: B and C nest within A; their effects become stable only
at A's commit, locks are inherited upward, and the whole structure is
undone if A aborts.  The benchmark times a full fig. 1 episode.
"""

from bench_util import print_figure

from repro.locking.modes import LockMode
from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter


def fig1_episode():
    runtime = LocalRuntime()
    counter_b = Counter(runtime, value=0)
    counter_c = Counter(runtime, value=0)
    checkpoints = {}
    with runtime.top_level(name="A") as a:
        with runtime.atomic(name="B") as b:
            counter_b.increment(1, action=b)
        with runtime.atomic(name="C") as c:
            counter_c.increment(1, action=c)
        checkpoints["locks_inherited_by_A"] = (
            runtime.locks.holds(a.uid, counter_b.uid, LockMode.WRITE)
            and runtime.locks.holds(a.uid, counter_c.uid, LockMode.WRITE)
        )
        checkpoints["stable_before_A_commit"] = (
            runtime.store.read_committed(counter_b.uid).payload
            == counter_b.snapshot()
        )
    checkpoints["stable_after_A_commit"] = (
        runtime.store.read_committed(counter_b.uid).payload
        == counter_b.snapshot()
    )
    checkpoints["values"] = (counter_b.value, counter_c.value)
    return checkpoints


def test_fig01_nested_actions(benchmark):
    checkpoints = benchmark(fig1_episode)
    assert checkpoints["locks_inherited_by_A"] is True
    assert checkpoints["stable_before_A_commit"] is False  # top-level only
    assert checkpoints["stable_after_A_commit"] is True
    assert checkpoints["values"] == (1, 1)
    print_figure(
        "Fig. 1 — concurrent nested atomic actions",
        [
            ("locks inherited by A at child commit", checkpoints["locks_inherited_by_A"]),
            ("B's update stable before A commits", checkpoints["stable_before_A_commit"]),
            ("B's update stable after A commits", checkpoints["stable_after_A_commit"]),
        ],
        headers=("property", "observed"),
    )
