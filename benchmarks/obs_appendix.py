"""Render the EXPERIMENTS.md "Observability appendix" from metrics dumps.

Workflow::

    REPRO_OBS_DUMP=obs-dumps pytest benchmarks/test_ablation_2pc.py \
        benchmarks/test_fanout_commit.py --benchmark-only -s
    python benchmarks/obs_appendix.py obs-dumps

Each benchmark that calls :func:`bench_util.emit_metrics_dump` drops a
``<name>.metrics.json`` into the dump directory; this script turns those
into the appendix's markdown tables — per-colour commit/abort outcomes
and coordinator-observed 2PC latency — ready to paste into
EXPERIMENTS.md.  Exit codes: 0 = appendix printed, 1 = no usable dumps.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

#: colours per dump shown individually; the rest fold into one "(+N more)"
#: row so a wide sweep cannot flood the appendix
MAX_COLOURS = 8


def load_dumps(directory: str) -> Dict[str, Dict[str, Any]]:
    """name -> parsed dump, for every readable ``*.metrics.json``."""
    dumps: Dict[str, Dict[str, Any]] = {}
    try:
        entries = sorted(os.listdir(directory))
    except OSError as error:
        print(f"error: cannot list {directory}: {error}", file=sys.stderr)
        return dumps
    for entry in entries:
        if not entry.endswith(".metrics.json"):
            continue
        path = os.path.join(directory, entry)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"warning: skipping {path}: {error}", file=sys.stderr)
            continue
        if isinstance(raw, dict):
            dumps[entry[:-len(".metrics.json")]] = raw
    return dumps


def markdown_table(headers: Sequence[str],
                   rows: Sequence[Sequence[Any]]) -> str:
    lines = ["| " + " | ".join(str(h) for h in headers) + " |",
             "|" + "---|" * len(headers)]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _counter_by_colour(dump: Dict[str, Any], name: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for row in dump.get("counters", []):
        if row.get("name") != name:
            continue
        colour = row.get("labels", {}).get("colour", "")
        out[colour] = out.get(colour, 0) + row.get("value", 0)
    return out


def colour_outcome_rows(dump: Dict[str, Any]) -> List[List[Any]]:
    """Per-colour committed/aborted/permanent counts, busiest first."""
    committed = _counter_by_colour(dump, "actions_committed_total")
    aborted = _counter_by_colour(dump, "actions_aborted_total")
    permanent = _counter_by_colour(dump, "colour_permanent_total")
    colours = sorted(set(committed) | set(aborted) | set(permanent),
                     key=lambda c: (-(committed.get(c, 0)
                                      + aborted.get(c, 0)), c))
    rows = [
        [colour or "(uncoloured)", int(committed.get(colour, 0)),
         int(aborted.get(colour, 0)), int(permanent.get(colour, 0))]
        for colour in colours[:MAX_COLOURS]
    ]
    hidden = colours[MAX_COLOURS:]
    if hidden:
        rows.append([
            f"(+{len(hidden)} more)",
            int(sum(committed.get(c, 0) for c in hidden)),
            int(sum(aborted.get(c, 0) for c in hidden)),
            int(sum(permanent.get(c, 0) for c in hidden)),
        ])
    return rows


def _fmt(value: Optional[float]) -> str:
    return f"{value:.2f}" if isinstance(value, (int, float)) else "-"


def twopc_rows(dump: Dict[str, Any]) -> List[List[Any]]:
    """Coordinator-observed 2PC latency histograms, one row per metric."""
    rows: List[List[Any]] = []
    for row in dump.get("histograms", []):
        if row.get("name") not in ("twopc_prepare_time",
                                   "commit_fanout_time"):
            continue
        labels = row.get("labels", {})
        label = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        rows.append([row["name"], label or "-", row.get("count", 0),
                     _fmt(row.get("mean")), _fmt(row.get("p95")),
                     _fmt(row.get("max"))])
    return rows


def render(directory: str, names: Optional[Sequence[str]] = None) -> str:
    dumps = load_dumps(directory)
    if names:
        dumps = {name: dump for name, dump in dumps.items()
                 if any(name.startswith(prefix) for prefix in names)}
    if not dumps:
        return ""
    sections: List[str] = []
    for name, dump in sorted(dumps.items()):
        parts = [f"### `{name}`"]
        outcomes = colour_outcome_rows(dump)
        if outcomes:
            parts.append("Per-colour action outcomes:\n\n" + markdown_table(
                ("colour", "committed", "aborted", "made permanent"),
                outcomes))
        latencies = twopc_rows(dump)
        if latencies:
            parts.append("Two-phase-commit latency (simulated ticks, "
                         "coordinator-observed):\n\n" + markdown_table(
                             ("metric", "labels", "samples", "mean", "p95",
                              "max"), latencies))
        if len(parts) == 1:
            parts.append("(no per-colour or 2PC metrics in this dump)")
        sections.append("\n\n".join(parts))
    return "\n\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    directory = argv[0] if argv else os.environ.get("REPRO_OBS_DUMP", "")
    if not directory:
        print("usage: python benchmarks/obs_appendix.py <dump-dir> "
              "[name-prefix ...]  (or set REPRO_OBS_DUMP)", file=sys.stderr)
        return 1
    appendix = render(directory, names=argv[1:] or None)
    if not appendix:
        print(f"error: no usable *.metrics.json dumps under {directory}",
              file=sys.stderr)
        return 1
    print(appendix)
    return 0


if __name__ == "__main__":
    sys.exit(main())
