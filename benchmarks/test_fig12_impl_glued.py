"""F12 — Fig. 12: the colouring scheme that implements glued actions.

Lock-level verification of §5.4: A locks O in its data colour and
additionally EXCLUSIVE_READ-locks the hand-over subset P in the control
colour (fig. 12's red action G); at A's commit the data colour commits
top-level (O−P fully released, updates permanent) while G inherits the red
pins on P; B then write-locks P in its own colour past G's pins.
"""

from bench_util import print_figure

from repro.locking.modes import LockMode
from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter
from repro.structures import GluedGroup


def scheme_episode():
    runtime = LocalRuntime()
    p = Counter(runtime, value=0)
    o_rest = Counter(runtime, value=0)
    checkpoints = {}
    glue = GluedGroup(runtime, name="G")
    g_uid = glue.control.uid
    with glue.member(name="A") as member:
        p.increment(1, action=member.action)
        o_rest.increment(1, action=member.action)
        member.hand_over(p)
        checkpoints["a_writes_in_data_colour"] = runtime.locks.holds(
            member.action.uid, p.uid, LockMode.WRITE,
            colour=member.action.default_colour,
        )
        checkpoints["a_pins_p_in_control_colour"] = runtime.locks.holds(
            member.action.uid, p.uid, LockMode.EXCLUSIVE_READ,
            colour=glue.control_colour,
        )
    checkpoints["g_inherits_pin_on_p"] = runtime.locks.holds(
        g_uid, p.uid, LockMode.EXCLUSIVE_READ, colour=glue.control_colour
    )
    checkpoints["o_rest_fully_released"] = not runtime.locks.holds(
        g_uid, o_rest.uid, LockMode.READ
    )
    checkpoints["updates_stable_at_a_commit"] = (
        runtime.store.read_committed(p.uid).payload == p.snapshot()
        and runtime.store.read_committed(o_rest.uid).payload
        == o_rest.snapshot()
    )
    with glue.member(name="B") as member:
        checkpoints["b_write_past_g_pin"] = bool(
            p.increment(10, action=member.action) == 11
        )
    glue.close()
    checkpoints["final_p"] = p.value
    return checkpoints


def test_fig12_scheme(benchmark):
    checkpoints = benchmark(scheme_episode)
    for key in (
        "a_writes_in_data_colour",
        "a_pins_p_in_control_colour",
        "g_inherits_pin_on_p",
        "o_rest_fully_released",
        "updates_stable_at_a_commit",
        "b_write_past_g_pin",
    ):
        assert checkpoints[key] is True, key
    assert checkpoints["final_p"] == 11
    print_figure(
        "Fig. 12 — colouring scheme for glued actions",
        [(key.replace("_", " "), value) for key, value in checkpoints.items()],
        headers=("lock-level property", "observed"),
    )
