"""F8 — Fig. 8: distributed make.

The paper's makefile on a simulated cluster.  Reproduced claims:

(i)   concurrency: Test0.o and Test1.o build in parallel — the makespan is
      ~2 compilations plus messaging, well under the serial 3;
(ii)  concurrency control: the serializing actions' retained locks protect
      the files for the duration;
(iii) fault tolerance: a failure before the final link leaves both object
      files consistent in stable storage, and a re-run only links.
"""

from bench_util import print_figure

from repro.apps.make.distributed import DistributedMakeEngine
from repro.apps.make.makefile import PAPER_EXAMPLE, parse_makefile
from repro.cluster.cluster import Cluster

COMPILE = 200.0
PLACEMENT = {
    "Test": "n1",
    "Test0.o": "n2", "Test0.c": "n2", "Test0.h": "n2",
    "Test1.o": "n3", "Test1.c": "n3", "Test1.h": "n2",
}
SOURCES = {name: f"/* {name} */" for name in
           ("Test0.c", "Test0.h", "Test1.c", "Test1.h")}


def build(seed=0, fail_before=None):
    cluster = Cluster(seed=seed)
    for node in ("ws", "n1", "n2", "n3"):
        cluster.add_node(node)
    engine = DistributedMakeEngine(
        cluster, cluster.client("ws"), parse_makefile(PAPER_EXAMPLE),
        PLACEMENT, compile_duration=COMPILE, fail_before=fail_before,
    )
    cluster.run_process("ws", engine.setup(SOURCES))
    return cluster, engine


def full_episode():
    # concurrent build
    cluster, engine = build()
    start = cluster.kernel.now
    report = cluster.run_process("ws", engine.make())
    makespan = cluster.kernel.now - start
    # failure before the final link
    cluster_f, engine_f = build(fail_before="Test")
    report_f = cluster_f.run_process("ws", engine_f.make())
    survived = engine_f.consistent_targets()
    engine_f.fail_before = None
    resume = cluster_f.run_process("ws", engine_f.make())
    return {
        "rebuilt": sorted(report.rebuilt),
        "makespan": makespan,
        "failed_at": report_f.failed_at,
        "consistent_after_failure": survived,
        "resume_rebuilt": resume.rebuilt,
    }


def test_fig08_distributed_make(benchmark):
    metrics = benchmark.pedantic(full_episode, rounds=2, iterations=1)
    assert metrics["rebuilt"] == ["Test", "Test0.o", "Test1.o"]
    # (i) concurrency: under the serial bound, at least the two-level bound
    assert 2 * COMPILE <= metrics["makespan"] < 3 * COMPILE * 0.95
    # (iii) fault tolerance
    assert metrics["failed_at"] == "Test"
    assert metrics["consistent_after_failure"] == ["Test0.o", "Test1.o"]
    assert metrics["resume_rebuilt"] == ["Test"]
    print_figure(
        "Fig. 8 — distributed make",
        [
            ("makespan (2 dependency levels)", f"{metrics['makespan']:.1f}"),
            ("serial bound (3 compilations)", f"{3 * COMPILE:.1f}"),
            ("speedup vs serial", f"{3 * COMPILE / metrics['makespan']:.2f}x"),
            ("consistent targets after failed link",
             ", ".join(metrics["consistent_after_failure"])),
            ("re-run rebuilds only", ", ".join(metrics["resume_rebuilt"])),
        ],
        headers=("measure", "value"),
    )
