"""A11 — Commit latency vs participant count with the parallel fan-out.

Termination used to walk the involved servers one RPC at a time, so a
commit over N servers cost ~N round trips of decision/finish traffic.
With the parallel, batched fan-out (one ``rpc_batch`` message per server,
all servers concurrently) the simulated commit latency should be bounded
by the slowest server — near-flat in N — while the per-server message
count stays constant.

The sweep runs on a fixed-delay network so the latency figure isolates
fan-out structure from delay jitter.  Results are checked in as
``BENCH_commit_fanout.json`` (regenerate with
``REPRO_BENCH_JSON=BENCH_commit_fanout.json pytest
benchmarks/test_fanout_commit.py --benchmark-only -s``).
"""

import json
import os

from bench_util import emit_metrics_dump, print_figure

from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkConfig
from repro.objects.state import ObjectState

PARTICIPANTS = (1, 2, 4, 8)
COMMITS = 5
DELAY = 1.0


def committed_int(cluster, ref):
    stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
    return ObjectState.from_bytes(stored.payload).unpack_int()


def run_at_width(participants):
    names = ["coord"] + [f"p{i}" for i in range(participants)]
    cluster = Cluster(
        seed=23,
        config=NetworkConfig(min_delay=DELAY, max_delay=DELAY),
    )
    for name in names:
        cluster.add_node(name)
    client = cluster.client("coord")
    result = {}

    def app():
        refs = []
        for name in names[1:]:
            ref = yield from client.create(name, "counter", value=0)
            refs.append(ref)
        start = cluster.kernel.now
        messages_before = cluster.network.sent_count
        for index in range(COMMITS):
            action = client.top_level(f"wide{index}")
            for ref in refs:
                yield from client.invoke(action, ref, "increment", 1)
            commit_start = cluster.kernel.now
            yield from client.commit(action)
            result.setdefault("commit_latencies", []).append(
                cluster.kernel.now - commit_start)
        result["elapsed"] = cluster.kernel.now - start
        result["messages"] = cluster.network.sent_count - messages_before
        return refs

    refs = cluster.run_process("coord", app())
    emit_metrics_dump(f"fanout_commit_n{participants}", cluster)
    for ref in refs:
        assert committed_int(cluster, ref) == COMMITS
    latencies = result["commit_latencies"]
    return {
        "participants": participants,
        "commit_latency": sum(latencies) / len(latencies),
        "messages_per_commit_per_node": (
            result["messages"] / COMMITS / participants),
    }


def sweep():
    return [run_at_width(n) for n in PARTICIPANTS]


def test_commit_latency_near_flat_in_participants(benchmark):
    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    single = rows[0]["commit_latency"]
    base = rows[1]["commit_latency"]
    widest = rows[-1]["commit_latency"]
    # one participant takes the one-phase fast path: a single round trip,
    # strictly cheaper than any delegated round
    assert single < base, (single, base)
    # the claim: within the delegated regime (>= 2 participants), 8-way
    # termination costs well under 2x the 2-way commit (a sequential
    # fan-out would put this ratio near 4)
    assert widest < base * 2.0, (base, widest)
    # batching keeps the per-server message bill flat too
    assert (rows[-1]["messages_per_commit_per_node"]
            <= rows[1]["messages_per_commit_per_node"] * 1.5)
    print_figure(
        "A11 — commit latency vs participant count (fixed 1.0 delay)",
        [(row["participants"], f"{row['commit_latency']:.1f}",
          f"{row['commit_latency'] / base:.2f}x",
          f"{row['messages_per_commit_per_node']:.1f}") for row in rows],
        headers=("participants", "commit latency", "vs 2 participants",
                 "msgs/commit/node"),
    )
    out = os.environ.get("REPRO_BENCH_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump({"figure": "commit_fanout",
                       "delay": DELAY, "commits": COMMITS,
                       "rows": rows}, fh, indent=2, sort_keys=True)
            fh.write("\n")
