"""F6 — Fig. 6: concurrent glued actions.

Fig. 6(a): A1..An run concurrently inside one control action and each
hands objects to a successor B.  Fig. 6(b): pairwise gluing chains.  The
benchmark runs n concurrent members on real threads, checks that all their
effects survive and the handed-over set passes intact, and times the
episode.
"""

import threading

from bench_util import print_figure

from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter
from repro.structures import GluedGroup

N_MEMBERS = 6


def fig6a_episode():
    runtime = LocalRuntime()
    private = [Counter(runtime, value=0) for _ in range(N_MEMBERS)]
    handed = [Counter(runtime, value=0) for _ in range(N_MEMBERS)]
    glue = GluedGroup(runtime, name="fig6a")
    errors = []

    def member_body(index):
        try:
            with glue.member(name=f"A{index}") as member:
                private[index].increment(1, action=member.action)
                handed[index].increment(1, action=member.action)
                member.hand_over(handed[index])
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    threads = [threading.Thread(target=member_body, args=(i,))
               for i in range(N_MEMBERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30)
    # B picks up every handed-over object
    with glue.member(name="B") as member:
        seen = [obj.get(action=member.action) for obj in handed]
        for obj in handed:
            obj.increment(10, action=member.action)
    glue.close()
    return {
        "errors": len(errors),
        "private_values": [c.value for c in private],
        "seen_by_B": seen,
        "handed_values": [c.value for c in handed],
    }


def fig6b_chain_episode():
    """Pairwise gluing: each Ai glued to A(i+1) via its own control."""
    runtime = LocalRuntime()
    token = Counter(runtime, value=0)
    previous = None
    for index in range(N_MEMBERS):
        group = GluedGroup(
            runtime, name=f"G{index}",
            parent=previous.control if previous else None,
        )
        with group.member(name=f"A{index}") as member:
            token.increment(1, action=member.action)
            member.hand_over(token)
        if previous is not None:
            previous.close()
        previous = group
    previous.close()
    return {"token": token.value}


def run_both():
    return {"fig 6(a)": fig6a_episode(), "fig 6(b)": fig6b_chain_episode()}


def test_fig06_concurrent_glued(benchmark):
    results = benchmark(run_both)
    a = results["fig 6(a)"]
    assert a["errors"] == 0
    assert a["private_values"] == [1] * N_MEMBERS
    assert a["seen_by_B"] == [1] * N_MEMBERS       # hand-over intact
    assert a["handed_values"] == [11] * N_MEMBERS
    assert results["fig 6(b)"]["token"] == N_MEMBERS
    print_figure(
        "Fig. 6 — concurrent glued actions",
        [
            ("6(a) members committed", N_MEMBERS),
            ("6(a) hand-overs intact at B", sum(a["seen_by_B"])),
            ("6(b) chain length completed", results["fig 6(b)"]["token"]),
        ],
        headers=("measure", "value"),
    )
