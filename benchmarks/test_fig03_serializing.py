"""F3 — Fig. 3: the serializing action and its three outcomes (§3.1).

Claims reproduced:
(i)   no effects when B aborts;
(ii)  B's and C's effects permanent when both commit;
(iii) B's effects only, when C aborts;
plus the headline contrast with fig. 2: B's completed work *survives* the
enclosing action's failure.
"""

from bench_util import print_figure

from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter
from repro.structures import SerializingAction

B_WORK = 50


def outcome_episode(b_aborts: bool, c_aborts: bool, a_aborts: bool):
    runtime = LocalRuntime()
    b_objects = [Counter(runtime, value=0) for _ in range(B_WORK)]
    c_object = Counter(runtime, value=0)
    ser = SerializingAction(runtime, name="A")
    try:
        with ser.constituent(name="B") as b:
            for counter in b_objects:
                counter.increment(1, action=b)
            if b_aborts:
                raise RuntimeError("B aborts")
        try:
            with ser.constituent(name="C") as c:
                c_object.increment(1, action=c)
                if c_aborts:
                    raise RuntimeError("C aborts")
        except RuntimeError:
            pass
    except RuntimeError:
        pass
    if a_aborts or b_aborts:
        ser.cancel()
    else:
        ser.close()
    return {
        "b_surviving": sum(counter.value for counter in b_objects),
        "c_surviving": c_object.value,
    }


def run_all_outcomes():
    return {
        "(i) B aborts": outcome_episode(b_aborts=True, c_aborts=False, a_aborts=True),
        "(ii) B and C commit": outcome_episode(False, False, False),
        "(iii) C aborts": outcome_episode(False, True, False),
        "B commits, A aborts": outcome_episode(False, False, True),
    }


def test_fig03_serializing_outcomes(benchmark):
    outcomes = benchmark(run_all_outcomes)
    assert outcomes["(i) B aborts"] == {"b_surviving": 0, "c_surviving": 0}
    assert outcomes["(ii) B and C commit"] == {"b_surviving": B_WORK, "c_surviving": 1}
    assert outcomes["(iii) C aborts"] == {"b_surviving": B_WORK, "c_surviving": 0}
    # the fig. 2 contrast: B's work survives A's failure
    assert outcomes["B commits, A aborts"]["b_surviving"] == B_WORK
    print_figure(
        "Fig. 3 — serializing action outcomes (§3.1)",
        [(label, m["b_surviving"], m["c_surviving"])
         for label, m in outcomes.items()],
        headers=("outcome", "B updates surviving", "C updates surviving"),
    )
