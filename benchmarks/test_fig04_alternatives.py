"""F4 — Fig. 4: the two rejected alternatives to glued actions (§3.2).

The scenario: A modifies the set O and selects a subset P for the
long-running B.  Requirements: P must stay unchanged between A and B, and
(ideally) O−P should be free for everyone else meanwhile.

(a) Two plain top-level actions: O−P is free, but **P is unprotected** —
    an interloper can modify P between A and B.
(b) A serializing action: P is protected, but **O−P stays locked** until
    B finishes — bystanders are shut out of everything.

The benchmark measures both quantities for both structures; fig. 5's glued
actions (next file) get both right.
"""

from bench_util import print_figure

from repro.errors import LockTimeout
from repro.locking.modes import LockMode
from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter
from repro.structures import SerializingAction

O_SIZE, P_SIZE = 10, 3


def probe_access(runtime, objects):
    """How many of ``objects`` an outsider can WRITE-lock right now."""
    accessible = 0
    for obj in objects:
        with runtime.top_level(name="probe") as probe:
            try:
                runtime.acquire(probe, obj, LockMode.WRITE, timeout=0.01)
                accessible += 1
            except LockTimeout:
                pass
            runtime.abort_action(probe)
    return accessible


def two_top_levels():
    """Fig. 4(a): A then B as unrelated top-level actions."""
    runtime = LocalRuntime()
    objects = [Counter(runtime, value=0) for _ in range(O_SIZE)]
    p, o_minus_p = objects[:P_SIZE], objects[P_SIZE:]
    with runtime.top_level(name="A"):
        for obj in objects:
            obj.increment(1)
    # between A and B: measure access
    p_writable = probe_access(runtime, p)
    rest_writable = probe_access(runtime, o_minus_p)
    # an interloper actually corrupts P before B starts
    with runtime.top_level(name="interloper"):
        p[0].increment(100)
    with runtime.top_level(name="B") as b_action:
        values = [obj.get(action=b_action) for obj in p]
    return {
        "p_protected": p_writable == 0,
        "rest_accessible": rest_writable,
        "b_saw_interference": any(v != 1 for v in values),
    }


def serializing_structure():
    """Fig. 4(b): A and B as constituents of one serializing action."""
    runtime = LocalRuntime()
    objects = [Counter(runtime, value=0) for _ in range(O_SIZE)]
    p, o_minus_p = objects[:P_SIZE], objects[P_SIZE:]
    ser = SerializingAction(runtime, name="ser")
    with ser.constituent(name="A") as a:
        for obj in objects:
            obj.increment(1, action=a)
    p_writable = probe_access(runtime, p)
    rest_writable = probe_access(runtime, o_minus_p)
    with ser.constituent(name="B") as b:
        values = [obj.get(action=b) for obj in p]
    ser.close()
    return {
        "p_protected": p_writable == 0,
        "rest_accessible": rest_writable,
        "b_saw_interference": any(v != 1 for v in values),
    }


def run_both():
    return {"fig 4(a) two top-levels": two_top_levels(),
            "fig 4(b) serializing": serializing_structure()}


def test_fig04_alternatives(benchmark):
    results = benchmark(run_both)
    plain = results["fig 4(a) two top-levels"]
    serial = results["fig 4(b) serializing"]
    # (a): no protection (and B really saw the interference), full access
    assert plain["p_protected"] is False
    assert plain["b_saw_interference"] is True
    assert plain["rest_accessible"] == O_SIZE - P_SIZE
    # (b): full protection, zero access for bystanders
    assert serial["p_protected"] is True
    assert serial["b_saw_interference"] is False
    assert serial["rest_accessible"] == 0
    print_figure(
        "Fig. 4 — alternatives to gluing: protection vs availability",
        [(label, m["p_protected"], m["rest_accessible"], m["b_saw_interference"])
         for label, m in results.items()],
        headers=("structure", "P protected", f"of {O_SIZE - P_SIZE} O-P objects free",
                 "B saw interference"),
    )
