"""F7 — Fig. 7: synchronous and asynchronous top-level independent actions.

Claims reproduced: B commits/aborts independently of A in both modes; in
the synchronous case A can branch on B's outcome; in the asynchronous case
A proceeds without waiting and may even terminate first.
"""

import threading

from bench_util import print_figure

from repro.actions.status import Outcome
from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter
from repro.structures import AsyncIndependent, independent_top_level


def sync_episode():
    runtime = LocalRuntime()
    board = Counter(runtime, value=0)
    observed_outcome = {}
    try:
        with runtime.top_level(name="A"):
            scope = independent_top_level(runtime, name="B")
            with scope as b:
                board.increment(1, action=b)
            observed_outcome["B"] = scope.outcome
            raise RuntimeError("A aborts afterwards")
    except RuntimeError:
        pass
    return {
        "b_outcome": observed_outcome["B"],
        "b_survives_a_abort": board.value == 1,
    }


def sync_branching_episode():
    """A aborts *because* B aborted (the paper's example dependency)."""
    runtime = LocalRuntime()
    own_work = Counter(runtime, value=0)
    a_aborted_due_to_b = False
    try:
        with runtime.top_level(name="A"):
            own_work.increment(1)
            scope = independent_top_level(runtime, name="B")
            try:
                with scope as b:
                    raise ValueError("B fails")
            except ValueError:
                pass
            if scope.outcome is Outcome.ABORTED:
                raise RuntimeError("A aborts because B aborted")
    except RuntimeError:
        a_aborted_due_to_b = True
    return {
        "a_aborted_due_to_b": a_aborted_due_to_b,
        "a_work_undone": own_work.value == 0,
    }


def async_episode():
    runtime = LocalRuntime()
    board = Counter(runtime, value=0)
    release = threading.Event()
    invoker_finished_first = {}

    def body(action):
        release.wait(10)
        board.increment(1, action=action)

    try:
        with runtime.top_level(name="A"):
            task = AsyncIndependent(runtime, body, name="B")
            invoker_finished_first["running"] = task.running
            raise RuntimeError("A aborts while B is still running")
    except RuntimeError:
        pass
    release.set()
    outcome = task.wait(10)
    return {
        "b_was_running_when_a_ended": invoker_finished_first["running"],
        "b_outcome": outcome,
        "b_survives": board.value == 1,
    }


def run_all():
    return {
        "sync": sync_episode(),
        "sync-branching": sync_branching_episode(),
        "async": async_episode(),
    }


def test_fig07_independent(benchmark):
    results = benchmark(run_all)
    assert results["sync"]["b_outcome"] is Outcome.COMMITTED
    assert results["sync"]["b_survives_a_abort"] is True
    assert results["sync-branching"]["a_aborted_due_to_b"] is True
    assert results["sync-branching"]["a_work_undone"] is True
    assert results["async"]["b_was_running_when_a_ended"] is True
    assert results["async"]["b_outcome"] is Outcome.COMMITTED
    assert results["async"]["b_survives"] is True
    print_figure(
        "Fig. 7 — top-level independent actions",
        [
            ("7(a) sync: B commits, then A aborts; B survives",
             results["sync"]["b_survives_a_abort"]),
            ("7(a) sync: A branches on B's outcome",
             results["sync-branching"]["a_aborted_due_to_b"]),
            ("7(b) async: A ends while B runs; B still commits",
             results["async"]["b_survives"]),
        ],
        headers=("claim", "observed"),
    )
