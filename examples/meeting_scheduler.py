#!/usr/bin/env python3
"""The §4(v) meeting scheduler: glued actions over personal diaries.

Three people's diaries, a round of preference narrowing per person, the
surviving slots passed from round to round under lock, everything else
released as soon as it is rejected — and a crash demo showing committed
rounds surviving.

Run:  python examples/meeting_scheduler.py
"""

from repro import Diary, LocalRuntime
from repro.apps.meeting.scheduler import MeetingScheduler, SchedulerCrash

DATES = [f"2026-07-{day:02d}" for day in range(6, 13)]

PREFERENCES = {
    "ann": DATES[1:6],
    "bob": DATES[2:7],
    "cat": [DATES[2], DATES[4]],
}


def main() -> None:
    runtime = LocalRuntime()
    diaries = [Diary(runtime, person, DATES) for person in PREFERENCES]

    # bob already has something on one candidate date
    with runtime.top_level(name="bob-dentist"):
        diaries[1].slot(DATES[4]).book("dentist")

    print("== scheduling a design review across three diaries")
    scheduler = MeetingScheduler(runtime, diaries)
    chosen = scheduler.schedule("design review", list(PREFERENCES.values()))
    for round_info in scheduler.rounds:
        print(f"  round {round_info.index}: examined {len(round_info.examined)}, "
              f"kept {round_info.kept}, released {round_info.released}")
    print(f"  agreed date: {chosen}")
    for diary in diaries:
        slot = diary.slot(chosen)
        print(f"  {diary.owner}: {slot.date} -> {slot.description!r}")

    # -- crash between rounds ------------------------------------------------------
    print("\n== the application crashes after round 1")
    runtime2 = LocalRuntime()
    diaries2 = [Diary(runtime2, person, DATES) for person in PREFERENCES]
    crashy = MeetingScheduler(runtime2, diaries2, fail_after_round=1)
    try:
        crashy.schedule("design review", list(PREFERENCES.values()))
    except SchedulerCrash as error:
        print(f"  crash: {error}")
    last = crashy.rounds[-1]
    print(f"  committed narrowing survives: kept={last.kept}")
    crashy.release_pins()
    resumed = MeetingScheduler(runtime2, diaries2)
    chosen2 = resumed.schedule("design review", [last.kept])
    print(f"  resumed from the surviving round: agreed {chosen2}")


if __name__ == "__main__":
    main()
