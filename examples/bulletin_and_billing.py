#!/usr/bin/env python3
"""Bulletin boards (§4(i)) and billing (§4(iii)) with independent actions.

Shows why nesting is wrong for these: the post and the charge must stand
even when the invoking application aborts — and how a compensating action
retracts a post when the application really wants that.

Run:  python examples/bulletin_and_billing.py
"""

from repro import Account, CompensationScope, LocalRuntime
from repro.apps.billing import MeteredService
from repro.apps.bulletin import BulletinBoard, BulletinService


def bulletin_demo(runtime: LocalRuntime) -> None:
    print("== bulletin board")
    board = BulletinBoard(runtime, "announcements")
    service = BulletinService(runtime, board)

    # a plain post from inside an application that later aborts
    try:
        with runtime.top_level(name="release-pipeline"):
            service.post("release-bot", "v2.0 rollout starting")
            raise RuntimeError("pipeline aborts after announcing")
    except RuntimeError:
        pass
    print(f"  after the pipeline aborted, the post stands: "
          f"{[p['text'] for p in service.read_all()]}")

    # a tentative post armed with a compensating retraction
    try:
        with runtime.top_level(name="maybe-event") as app:
            compensation = CompensationScope(runtime, app)
            service.post("events", "party friday?", compensation=compensation)
            raise RuntimeError("event cancelled")
    except RuntimeError:
        pass
    print(f"  compensations retracted the tentative post: "
          f"{[p['text'] for p in service.read_all()]}")

    # asynchronous posting (fig. 7(b))
    task = service.post_async("bob", "posted in the background")
    task.wait(5)
    print(f"  async post landed: {[p['text'] for p in service.read_all()]}\n")


def billing_demo(runtime: LocalRuntime) -> None:
    print("== metered service billing")
    customer = Account(runtime, owner="ann", balance=100)
    provider = Account(runtime, owner="cloud-co", balance=0)
    render = MeteredService(runtime, "render", fee=15,
                            provider_account=provider)
    output = Account(runtime, owner="artifacts", balance=0)

    # the job aborts, the charge stands, the artifact does not
    try:
        with runtime.top_level(name="render-job"):
            render.call(customer, lambda: output.deposit(1, "frame"))
            raise RuntimeError("render crashed at 99%")
    except RuntimeError:
        pass
    print(f"  after the aborted job: customer={customer.balance}, "
          f"provider={provider.balance}, artifacts={output.balance}")

    # the same with a refund-on-abort policy via compensation
    try:
        with runtime.top_level(name="render-job-2") as job:
            refunds = CompensationScope(runtime, job)
            render.call(customer, lambda: output.deposit(1, "frame"),
                        refund_on_abort=refunds)
            raise RuntimeError("crashed again")
    except RuntimeError:
        pass
    print(f"  with refund policy: customer={customer.balance} "
          f"(charged then refunded)")
    print(f"  customer statement: {customer.statement}")


def main() -> None:
    runtime = LocalRuntime()
    bulletin_demo(runtime)
    billing_demo(runtime)


if __name__ == "__main__":
    main()
