#!/usr/bin/env python3
"""Regenerate the paper's figures as timelines from *real executions*.

Every diagram below is rendered from a trace of the actual runtime — not
drawn by hand.  Compare with figs. 2, 3, 5 and 7 of the paper.

Run:  python examples/timeline_traces.py
"""

from repro import Counter, GluedGroup, LocalRuntime, SerializingAction, independent_top_level
from repro.trace import TraceRecorder, render_timeline


def traced():
    runtime = LocalRuntime()
    recorder = TraceRecorder()
    runtime.add_observer(recorder)
    return runtime, recorder


def fig2_nesting() -> None:
    runtime, recorder = traced()
    counter = Counter(runtime, value=0)
    try:
        with runtime.top_level(name="A"):
            with runtime.atomic(name="B"):
                counter.increment(1)
            with runtime.atomic(name="C"):
                counter.increment(1)
            raise RuntimeError("failure prevents completion of A")
    except RuntimeError:
        pass
    print(render_timeline(recorder, title="Fig. 2 — nested atomic actions "
                                          "(A aborts; B and C are undone)"))
    print(f"    surviving updates: {counter.value}\n")


def fig3_serializing() -> None:
    runtime, recorder = traced()
    counter = Counter(runtime, value=0)
    ser = SerializingAction(runtime, name="A")
    with ser.constituent(name="B") as b:
        counter.increment(1, action=b)
    with ser.constituent(name="C") as c:
        counter.increment(1, action=c)
    ser.cancel()
    print(render_timeline(recorder, title="Fig. 3 — serializing action "
                                          "(A aborts; B and C survive)"))
    print(f"    surviving updates: {counter.value}\n")


def fig5_glued() -> None:
    runtime, recorder = traced()
    p = Counter(runtime, value=0)
    rest = Counter(runtime, value=0)
    with GluedGroup(runtime, name="glue") as glue:
        with glue.member(name="A") as member:
            p.increment(1, action=member.action)
            rest.increment(1, action=member.action)
            member.hand_over(p)
        with glue.member(name="B") as member:
            p.increment(1, action=member.action)
    print(render_timeline(recorder, title="Fig. 5 — glued actions "
                                          "(P handed from A to B)",
                          show_locks=True))
    print(f"    p={p.value}, rest={rest.value}\n")


def fig7_independent() -> None:
    runtime, recorder = traced()
    board = Counter(runtime, value=0)
    try:
        with runtime.top_level(name="A"):
            with independent_top_level(runtime, name="B") as post:
                board.increment(1, action=post)
            raise RuntimeError("A aborts after B committed")
    except RuntimeError:
        pass
    print(render_timeline(recorder, title="Fig. 7(a) — top-level independent "
                                          "action (B survives A's abort)"))
    print(f"    board={board.value}\n")


def main() -> None:
    fig2_nesting()
    fig3_serializing()
    fig5_glued()
    fig7_independent()


if __name__ == "__main__":
    main()
