#!/usr/bin/env python3
"""The §4(v) meeting scheduler, distributed: diaries on the participants'
own workstations, glued rounds across object servers, and a coordinator
crash that loses no committed narrowing.

Run:  python examples/distributed_meeting.py
"""

from repro.apps.meeting.distributed import (
    DistributedMeetingScheduler,
    SchedulerCrashRemote,
)
from repro.cluster.cluster import Cluster
from repro.trace import TraceRecorder, render_timeline

DATES = [f"2026-07-{day:02d}" for day in range(13, 20)]
PEOPLE = {"ann": "ws-ann", "bob": "ws-bob", "cat": "ws-cat"}
PREFERENCES = [DATES[1:6], DATES[2:7], [DATES[3], DATES[5]]]


def main() -> None:
    cluster = Cluster(seed=42)
    cluster.add_node("coordinator")
    for node in PEOPLE.values():
        cluster.add_node(node)
    client = cluster.client("coordinator")
    recorder = TraceRecorder(tick_source=lambda: cluster.kernel.now)
    client.add_observer(recorder)

    scheduler = DistributedMeetingScheduler(cluster, client)
    cluster.run_process("coordinator",
                        scheduler.create_diaries(PEOPLE, DATES))
    recorder.clear()

    print("== scheduling across three workstations")

    def run():
        return (yield from scheduler.schedule("offsite", PREFERENCES))

    chosen = cluster.run_process("coordinator", run())
    for info in scheduler.rounds:
        print(f"  round {info.index}: kept {len(info.kept)}, "
              f"released {len(info.released)}")
    print(f"  agreed: {chosen}")
    print("\n  the fig. 9 rounds, as executed (sim-time axis):")
    print(render_timeline(recorder, width=56))

    print("\n== the coordinator crashes after round 1")
    cluster2 = Cluster(seed=43)
    cluster2.add_node("coordinator")
    for node in PEOPLE.values():
        cluster2.add_node(node)
    client2 = cluster2.client("coordinator")
    crashy = DistributedMeetingScheduler(cluster2, client2)
    cluster2.run_process("coordinator", crashy.create_diaries(PEOPLE, DATES))

    def run_crashy():
        try:
            yield from crashy.schedule("offsite", PREFERENCES,
                                       fail_after_round=1)
        except SchedulerCrashRemote as error:
            return str(error)

    print(f"  {cluster2.run_process('coordinator', run_crashy())}")
    print(f"  committed narrowing survives on the diary servers: "
          f"{crashy.rounds[-1].kept}")

    def resume():
        yield from crashy.release_pins()
        return (yield from crashy.schedule("offsite",
                                           PREFERENCES[1:]))

    chosen2 = cluster2.run_process("coordinator", resume())
    print(f"  resumed and agreed: {chosen2}")


if __name__ == "__main__":
    main()
