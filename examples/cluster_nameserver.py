#!/usr/bin/env python3
"""The distributed substrate end to end: nodes, crashes, 2PC, replication,
and the §4(ii) replicated name server.

Run:  python examples/cluster_nameserver.py
"""

from repro.cluster.cluster import Cluster
from repro.objects.state import ObjectState
from repro.replication.nameserver import ReplicatedNameServer


def committed_int(cluster, ref):
    stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
    return ObjectState.from_bytes(stored.payload).unpack_int()


def main() -> None:
    cluster = Cluster(seed=2026)
    for name in ("workstation", "store-a", "store-b", "store-c"):
        cluster.add_node(name)
    client = cluster.client("workstation")

    print("== a distributed action across two object stores (2PC)")

    def distributed_action():
        left = yield from client.create("store-a", "counter", value=0)
        right = yield from client.create("store-b", "counter", value=0)
        action = client.top_level("move")
        yield from client.invoke(action, left, "increment", 5)
        yield from client.invoke(action, right, "increment", 5)
        yield from client.commit(action)
        return left, right

    left, right = cluster.run_process("workstation", distributed_action())
    print(f"  both stable stores updated atomically: "
          f"{committed_int(cluster, left)} / {committed_int(cluster, right)}")

    print("\n== a crash mid-action aborts it cleanly")

    def crashy_action():
        action = client.top_level("doomed")
        yield from client.invoke(action, left, "increment", 100)
        cluster.crash("store-a")
        cluster.restart("store-a")
        try:
            yield from client.invoke(action, left, "increment", 100)
        except Exception as error:
            return type(error).__name__

    outcome = cluster.run_process("workstation", crashy_action())
    print(f"  epoch check detected the restart: {outcome}; "
          f"stable value still {committed_int(cluster, left)}")

    print("\n== replicated name server (§4(ii))")

    def nameserver_session():
        ns = yield from ReplicatedNameServer.create(
            client, ["store-a", "store-b", "store-c"]
        )
        yield from ns.bind("laser-printer", {"node": "store-b", "port": 9100})
        yield from ns.bind("build-farm", {"node": "store-c", "port": 4000})
        names = yield from ns.names()
        # one replica dies; lookups keep working (read-one)
        cluster.crash("store-a")
        printer = yield from ns.lookup("laser-printer")
        cluster.restart("store-a")
        # an application action aborts, but its name-server update stands
        app = client.top_level("failover-app")
        yield from ns.bind("build-farm", {"node": "store-a", "port": 4000},
                           invoker=app)
        yield from client.abort(app)
        farm = yield from ns.lookup("build-farm")
        return names, printer, farm

    names, printer, farm = cluster.run_process(
        "workstation", nameserver_session()
    )
    print(f"  bound names: {names}")
    print(f"  lookup with a replica down: laser-printer -> {printer}")
    print(f"  rebind survived the application's abort: build-farm -> {farm}")
    print(f"\n  network stats: {cluster.network.stats()}")


if __name__ == "__main__":
    main()
