#!/usr/bin/env python3
"""The §4(iv) distributed make on the cluster simulator (fig. 8).

The paper's own makefile (Test <- Test0.o, Test1.o) with files spread
across three object-server nodes.  Shows:

- concurrency: the two object files compile in parallel (makespan ~2
  compilations, not 3);
- concurrency control: the files a make is using cannot be touched by
  other programs meanwhile;
- fault tolerance: a failure before the final link leaves the object files
  consistent in stable storage; a re-run only links.

Run:  python examples/distributed_make.py
"""

from repro.apps.make.distributed import DistributedMakeEngine
from repro.apps.make.makefile import PAPER_EXAMPLE, parse_makefile
from repro.cluster.cluster import Cluster
from repro.trace import TraceRecorder, render_timeline

PLACEMENT = {
    "Test": "node-1",
    "Test0.o": "node-2", "Test0.c": "node-2", "Test0.h": "node-2",
    "Test1.o": "node-3", "Test1.c": "node-3", "Test1.h": "node-2",
}
SOURCES = {name: f"/* source of {name} */"
           for name in ("Test0.c", "Test0.h", "Test1.c", "Test1.h")}
COMPILE_DURATION = 200.0


def build_engine(seed=0, fail_before=None):
    cluster = Cluster(seed=seed)
    for node in ("workstation", "node-1", "node-2", "node-3"):
        cluster.add_node(node)
    client = cluster.client("workstation")
    recorder = TraceRecorder(tick_source=lambda: cluster.kernel.now)
    client.add_observer(recorder)
    engine = DistributedMakeEngine(
        cluster, client, parse_makefile(PAPER_EXAMPLE), PLACEMENT,
        compile_duration=COMPILE_DURATION, fail_before=fail_before,
    )
    cluster.run_process("workstation", engine.setup(SOURCES))
    recorder.clear()  # drop setup noise; trace the build itself
    return cluster, engine, recorder


def main() -> None:
    print("== distributed make of the paper's makefile")
    cluster, engine, recorder = build_engine()
    start = cluster.kernel.now
    report = cluster.run_process("workstation", engine.make())
    makespan = cluster.kernel.now - start
    print(f"  rebuilt: {report.rebuilt}")
    print(f"  makespan: {makespan:.1f} sim-time units "
          f"(one compilation = {COMPILE_DURATION})")
    print(f"  serial lower bound would be {3 * COMPILE_DURATION:.0f}; the two "
          f".o files built concurrently")
    print(f"  consistent targets in stable storage: "
          f"{engine.consistent_targets()}")
    print("\n  the fig. 8 picture, from this very run:")
    print(render_timeline(recorder, width=64))

    print("\n== nothing to do on a second run")
    report2 = cluster.run_process("workstation", engine.make())
    print(f"  rebuilt: {report2.rebuilt}, up to date: {report2.up_to_date}")

    print("\n== make fails before the final link")
    cluster3, engine3, _recorder3 = build_engine(fail_before="Test")
    report3 = cluster3.run_process("workstation", engine3.make())
    print(f"  failed at: {report3.failed_at}; rebuilt before the failure: "
          f"{sorted(report3.rebuilt)}")
    print(f"  object files survive in stable storage: "
          f"Test0.o ts={engine3.stable_timestamp('Test0.o'):.1f}, "
          f"Test1.o ts={engine3.stable_timestamp('Test1.o'):.1f}")
    engine3.fail_before = None
    report4 = cluster3.run_process("workstation", engine3.make())
    print(f"  re-run only finishes the link: rebuilt={report4.rebuilt}, "
          f"up to date: {sorted(report4.up_to_date)}")


if __name__ == "__main__":
    main()
