#!/usr/bin/env python3
"""A tour of multi-coloured actions: figs. 10, 14/15 by hand, then the
serializing / glued / independent structures with automatic colours.

Run:  python examples/coloured_actions_tour.py
"""

from repro import (
    Counter,
    GluedGroup,
    LocalRuntime,
    SerializingAction,
    independence_markers,
    independent_relative_to,
    independent_top_level,
)


def fig10_two_coloured_action(runtime: LocalRuntime) -> None:
    """B {red, blue} nested in A {blue}: red commits top-level, blue with A."""
    print("== fig. 10: a two-coloured action")
    red, blue = runtime.colours.fresh("red"), runtime.colours.fresh("blue")
    o_red = Counter(runtime, value=0)
    o_blue = Counter(runtime, value=0)
    try:
        with runtime.coloured([blue], name="A"):
            with runtime.coloured([red, blue], name="B") as b:
                o_red.increment(1, colour=red, action=b)
                o_blue.increment(1, colour=blue, action=b)
            print(f"  after B commits: o_red={o_red.value} (permanent), "
                  f"o_blue={o_blue.value} (held by A)")
            raise RuntimeError("A aborts")
    except RuntimeError:
        pass
    print(f"  after A aborts:  o_red={o_red.value} survives, "
          f"o_blue={o_blue.value} undone\n")


def fig14_nlevel_independence(runtime: LocalRuntime) -> None:
    """E, invoked from B, survives B's abort but falls with A (fig. 14)."""
    print("== figs. 14/15: n-level independent actions")
    (blue,) = independence_markers(runtime, 1, name="blue")
    red = runtime.colours.fresh("red")
    oe = Counter(runtime, value=0)
    try:
        with runtime.coloured([red, blue], name="A") as a:
            try:
                with runtime.coloured([red], parent=a, name="B") as b:
                    with independent_relative_to(runtime, a, parent=b,
                                                 name="E") as e:
                        oe.increment(1, action=e)
                    raise RuntimeError("B aborts after invoking E")
            except RuntimeError:
                pass
            print(f"  B aborted, E's effect survives: oe={oe.value}")
            raise RuntimeError("now A aborts")
    except RuntimeError:
        pass
    print(f"  A aborted, E anchored at A is undone: oe={oe.value}\n")


def serializing_structure(runtime: LocalRuntime) -> None:
    """Fig. 3 via the structures API — colours assigned automatically."""
    print("== serializing action (figs. 3/11)")
    data = Counter(runtime, value=0)
    ser = SerializingAction(runtime, name="pipeline")
    with ser.constituent(name="B"):
        data.increment(10)
    print(f"  B committed: data={data.value} already permanent")
    ser.cancel()  # the serializing action fails...
    print(f"  serializing action aborted: data={data.value} — B's work kept\n")


def glued_structure(runtime: LocalRuntime) -> None:
    """Fig. 5: hand over P, release O - P early."""
    print("== glued actions (figs. 5/12)")
    p = Counter(runtime, value=0)        # handed over
    o_minus_p = Counter(runtime, value=0)  # released at A's commit
    with GluedGroup(runtime, name="glue") as glue:
        with glue.member(name="A") as member:
            p.increment(1, action=member.action)
            o_minus_p.increment(1, action=member.action)
            member.hand_over(p)
        print("  A committed: o_minus_p free for everyone, p pinned for B")
        with glue.member(name="B") as member:
            p.increment(10, action=member.action)
    print(f"  B committed, group closed: p={p.value}, "
          f"o_minus_p={o_minus_p.value}\n")


def independent_structure(runtime: LocalRuntime) -> None:
    """Fig. 7(a): a bulletin-style post that outlives its invoker's abort."""
    print("== top-level independent action (figs. 7/13)")
    board = Counter(runtime, value=0)
    try:
        with runtime.top_level(name="application"):
            with independent_top_level(runtime, name="post") as post:
                board.increment(1, action=post)
            raise RuntimeError("application aborts after posting")
    except RuntimeError:
        pass
    print(f"  application aborted, the post stands: board={board.value}\n")


def main() -> None:
    runtime = LocalRuntime()
    fig10_two_coloured_action(runtime)
    fig14_nlevel_independence(runtime)
    serializing_structure(runtime)
    glued_structure(runtime)
    independent_structure(runtime)


if __name__ == "__main__":
    main()
