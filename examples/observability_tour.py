#!/usr/bin/env python3
"""Tour of the observability layer over a 2-node cluster run.

Runs a small banking workload (two transfers, one doomed action, one
glued-colour hand-off), then shows every exporter:

- the plain-text metrics report (per-colour commits/aborts, lock waits,
  2PC round latencies, message counts),
- the distributed span tree, stitched client -> transport -> server,
- the ASCII span timeline,
- a Chrome ``chrome://tracing`` / Perfetto JSON trace,
- a saved trace document replayed through ``python -m repro.obs.report``,
- live introspection: a ClusterInspector probing the cluster through a
  partition (healthy -> degraded/stalled -> recovered) with the operator
  console frames rendered inline.

Run:  python examples/observability_tour.py
"""

import json
import tempfile
from pathlib import Path

from repro.cluster.cluster import Cluster
from repro.obs.introspect import render_snapshot
from repro.obs.report import main as report_main


def build_cluster():
    cluster = Cluster(seed=42)
    cluster.add_node("teller")
    cluster.add_node("vault")
    return cluster


def workload(cluster):
    client = cluster.client("teller")

    def app():
        checking = yield from client.create("vault", "account", balance=100)
        savings = yield from client.create("vault", "account", balance=0)

        # two committed transfers — distributed actions over both accounts
        for index in range(2):
            action = client.top_level(f"transfer{index}")
            yield from client.invoke(action, checking, "withdraw", 10)
            yield from client.invoke(action, savings, "deposit", 10)
            yield from client.commit(action)

        # one aborted action: its updates never reach the stable store
        doomed = client.top_level("doomed")
        yield from client.invoke(doomed, checking, "deposit", 999)
        yield from client.abort(doomed)

        # a nested (same-colour) action: commit bequeaths its locks to the
        # parent, visible as colour_inherited_total in the metrics
        outer = client.top_level("outer")
        inner = client.atomic(outer, "inner")
        yield from client.invoke(inner, savings, "deposit", 1)
        yield from client.commit(inner)
        yield from client.commit(outer)

    cluster.run_process("teller", app())


def main() -> None:
    cluster = build_cluster()
    workload(cluster)

    print("=" * 72)
    print("1. metrics report")
    print("=" * 72)
    print(cluster.obs.report())

    print()
    print("=" * 72)
    print("2. distributed span trees (client and server nodes stitched)")
    print("=" * 72)
    print(cluster.obs.span_tree())

    print()
    print("=" * 72)
    print("3. span timeline for the first transfer")
    print("=" * 72)
    first = next(s for s in cluster.obs.tracer.snapshot()
                 if s.name == "action:transfer0")
    print(cluster.obs.span_timeline(width=56, trace_id=first.trace_id))

    out_dir = Path(tempfile.mkdtemp(prefix="repro-obs-"))
    chrome_path = out_dir / "tour.chrome.json"
    chrome_path.write_text(json.dumps(cluster.obs.chrome_trace(), indent=2))
    trace_path = out_dir / "tour.trace.json"
    cluster.obs.save(str(trace_path))
    print()
    print("=" * 72)
    print("4. exported artifacts")
    print("=" * 72)
    print(f"chrome trace (load in chrome://tracing or Perfetto): {chrome_path}")
    print(f"trace document:                                      {trace_path}")

    print()
    print("=" * 72)
    print(f"5. replayed via: python -m repro.obs.report {trace_path.name} "
          "--metrics-only")
    print("=" * 72)
    report_main([str(trace_path), "--metrics-only"])

    print()
    print("=" * 72)
    print("6. live introspection: partition the vault, watch the verdict "
          "turn")
    print("=" * 72)
    inspector = cluster.attach_introspection(interval=0)
    frames = [("all links up", inspector.probe_once())]
    cluster.network.partition("teller", "vault")
    cluster.run(until=cluster.kernel.now + 1.0)
    frames.append(("teller/vault partitioned", inspector.probe_once()))
    cluster.network.heal_all()
    frames.append(("healed", inspector.probe_once()))
    for title, snapshot in frames:
        print(f"\n--- {title} ---")
        for line in render_snapshot(snapshot):
            print(line)
    print("\n(the same frames, plus drift injection, via: "
          "python -m repro.obs.top --arm partition --watch)")


if __name__ == "__main__":
    main()
