#!/usr/bin/env python3
"""Quickstart: atomic actions over persistent objects.

Covers the §2 basics in two minutes: top-level and nested actions, commit
and abort, permanence in the stable object store, and concurrency control
with read/write locks.

Run:  python examples/quickstart.py
"""

from repro import Account, Counter, LocalRuntime
from repro.stdobjects.account import InsufficientFunds


def main() -> None:
    runtime = LocalRuntime()

    # -- persistent objects ----------------------------------------------------
    hits = Counter(runtime, value=0)
    savings = Account(runtime, owner="ann", balance=100)
    checking = Account(runtime, owner="ann", balance=10)

    # -- a committed top-level action -------------------------------------------
    with runtime.top_level(name="visit"):
        hits.increment()
    print(f"after commit: hits={hits.value}")
    stored = runtime.store.read_committed(hits.uid)
    print(f"stable store holds {len(stored.payload)} bytes for the counter "
          f"(permanence of effect)")

    # -- failure atomicity: the transfer aborts as a unit ------------------------
    try:
        with runtime.top_level(name="transfer"):
            savings.withdraw(50, "to checking")
            checking.deposit(50, "from savings")
            raise RuntimeError("network glitch before the paperwork finished")
    except RuntimeError:
        pass
    print(f"after aborted transfer: savings={savings.balance} "
          f"checking={checking.balance} (both restored)")

    # -- a successful transfer ------------------------------------------------------
    with runtime.top_level(name="transfer-2"):
        savings.withdraw(50, "to checking")
        checking.deposit(50, "from savings")
    print(f"after committed transfer: savings={savings.balance} "
          f"checking={checking.balance}")

    # -- application errors abort too --------------------------------------------------
    try:
        with runtime.top_level(name="overdraw"):
            checking.withdraw(10_000, "yacht")
    except InsufficientFunds as error:
        print(f"overdraw refused and undone: {error}")
    print(f"checking statement: {checking.statement}")

    # -- nested actions: fig. 1 ----------------------------------------------------------
    # B and C nest inside A; C's failure is contained, A commits the rest.
    with runtime.top_level(name="A"):
        with runtime.atomic(name="B"):
            hits.increment(10)
        try:
            with runtime.atomic(name="C"):
                hits.increment(100)
                raise RuntimeError("C fails")
        except RuntimeError:
            pass
        print(f"inside A after B committed, C aborted: hits={hits.value}")
    print(f"after A's commit: hits={hits.value}")

    # ... but if the *enclosing* action aborts, nested commits unwind with it
    # (fig. 2 — the problem serializing actions solve; see the other examples).
    try:
        with runtime.top_level(name="A2"):
            with runtime.atomic(name="B2"):
                hits.increment(1000)
            raise RuntimeError("A2 fails after B2 'completed'")
    except RuntimeError:
        pass
    print(f"after A2's abort: hits={hits.value} (B2's work was undone)")


if __name__ == "__main__":
    main()
