#!/usr/bin/env python3
"""Chaos demonstration: transfers under crashes, restarts and message loss.

Two accounts on two object servers; a client runs transfers while a fault
schedule crashes the servers and the network drops a tenth of all
messages.  Atomicity (2PC + recovery) keeps the books balanced no matter
what mixture of commits, aborts and timeouts results.

Run:  python examples/chaos_bank.py
"""

from repro.cluster.cluster import Cluster
from repro.cluster.failures import FaultSchedule
from repro.cluster.network import NetworkConfig
from repro.objects.state import ObjectState
from repro.sim.kernel import Timeout

AMOUNT, TRANSFERS, INITIAL = 10, 20, 500


def stable_balance(cluster, ref):
    stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
    state = ObjectState.from_bytes(stored.payload)
    state.unpack_string()
    return state.unpack_int()


def main() -> None:
    cluster = Cluster(
        seed=2026,
        config=NetworkConfig(drop_probability=0.10, duplicate_probability=0.05),
        rpc_retries=10, lock_wait_timeout=120.0,
    )
    for name in ("teller", "vault-a", "vault-b"):
        cluster.add_node(name)
    client = cluster.client("teller")
    refs = {}

    def setup():
        refs["A"] = yield from client.create("vault-a", "account",
                                             owner="savings", balance=INITIAL)
        refs["B"] = yield from client.create("vault-b", "account",
                                             owner="checking", balance=0)

    cluster.run_process("teller", setup())

    schedule = FaultSchedule(cluster, seed=7, mean_uptime=300.0,
                             mean_downtime=40.0)
    schedule.arm(["vault-a", "vault-b"], horizon=3000.0, start_after=30.0)
    print(f"fault schedule: {schedule.crash_count()} crashes planned")
    for when, node, kind in schedule.planned[:6]:
        print(f"  t={when:7.1f}  {node} {kind}")

    outcomes = {"committed": 0, "failed": 0}

    def workload():
        for index in range(TRANSFERS):
            action = client.top_level(f"xfer{index}")
            try:
                yield from client.invoke(action, refs["A"], "withdraw", AMOUNT)
                yield from client.invoke(action, refs["B"], "deposit", AMOUNT)
                yield from client.commit(action)
                outcomes["committed"] += 1
            except Exception as error:
                outcomes["failed"] += 1
                if not action.status.terminated:
                    yield from client.abort(action)
            yield Timeout(25.0)

    cluster.run_process("teller", workload())
    for name in ("vault-a", "vault-b"):
        if not cluster.nodes[name].alive:
            cluster.restart(name)
    cluster.run(until=cluster.kernel.now + 2000.0)

    balance_a = stable_balance(cluster, refs["A"])
    balance_b = stable_balance(cluster, refs["B"])
    print(f"\ntransfers: {outcomes['committed']} committed, "
          f"{outcomes['failed']} failed/aborted")
    print(f"stable balances: savings={balance_a} checking={balance_b} "
          f"(total {balance_a + balance_b}, started with {INITIAL})")
    print(f"network: {cluster.network.stats()}")
    assert balance_a + balance_b == INITIAL
    assert balance_b == outcomes["committed"] * AMOUNT
    print("invariants held: conservation and per-transfer atomicity")


if __name__ == "__main__":
    main()
